// The immutable half of the reconstruction stack: basis slice, mean map,
// sensor set, and the full-sensor QR factor, shared read-only between the
// serving engine, the per-mask factor cache, and any number of threads.
#ifndef EIGENMAPS_CORE_MODEL_H
#define EIGENMAPS_CORE_MODEL_H

#include <cstddef>
#include <vector>

#include "core/allocation.h"
#include "core/basis.h"
#include "core/workspace.h"
#include "numerics/qr.h"
#include "sparse/blocked_csr.h"

namespace eigenmaps::core {

/// Which operator the expansion tail (out = mean + alpha V_k^T) runs
/// through. Masked solves always stay fp64 — only the expansion operator
/// changes representation (DESIGN.md §14).
enum class ExpansionBackend {
  /// Dense fp64 GEMM: the default and the golden path. Byte-identical to
  /// every result this library ever produced.
  kDense64 = 0,
  /// Thresholded blocked-CSR, still fp64: bit-identical to kDense64 at
  /// threshold 0, bounded-error at nonzero thresholds, memory scales with
  /// the stored density.
  kSparse64 = 1,
  /// Converted-once fp32 operator + fp32 SIMD GEMM: half the operator
  /// bytes and roughly twice the lanes; expansion error is measured
  /// against the fp64 operator at construction and enforced against the
  /// budget when the model is published to a registry.
  kFp32 = 2,
};

/// Stable lowercase name ("dense64" / "sparse64" / "fp32").
const char* expansion_backend_name(ExpansionBackend backend);

/// Per-model expansion-tail configuration, frozen at construction.
struct ExpansionOptions {
  ExpansionBackend backend = ExpansionBackend::kDense64;
  /// kSparse64: drop 8-wide operator blocks whose entries all fall below
  /// sparse_threshold * max|V_k|. 0 keeps everything (bit-identical).
  double sparse_threshold = 0.0;
  /// kFp32: the largest acceptable measured expansion error
  /// (max |fp32 - fp64| / max |fp64| over a deterministic probe batch).
  /// ModelRegistry::register_model throws when the measured error
  /// exceeds it.
  double fp32_error_budget = 1e-4;
};

/// ExpansionOptions resolved from the environment: backend from
/// EIGENMAPS_EXPANSION_BACKEND ("dense64" / "sparse64" / "fp32", default
/// dense64), threshold from EIGENMAPS_SPARSE_THRESHOLD, budget from
/// EIGENMAPS_FP32_ERROR_BUDGET. Malformed values throw (support/env.h).
ExpansionOptions default_expansion_options();

/// Everything a trained reconstruction needs, frozen at construction: the
/// order-k basis slice V_k (and its transpose for the batched GEMM), the
/// mean map, the sensor locations, the sampled basis Psi~ (sensors x k)
/// and its QR factor. Construction throws std::invalid_argument when Psi~
/// is rank deficient (Theorem 1's feasibility condition) or k exceeds the
/// sensor count. Immutable after construction, so it is safe to share
/// across threads and to hot-swap behind a registry without draining
/// in-flight work — old jobs keep their shared_ptr, new jobs resolve the
/// replacement.
///
/// The `_into` methods are the steady-state serving path: caller-provided
/// outputs plus a reusable Workspace mean zero heap allocations per frame
/// once the workspace is warm (DESIGN.md §10). The value-returning forms
/// delegate to them through a thread-local workspace.
class ReconstructionModel {
 public:
  /// Dense fp64 expansion (the historical constructor; golden paths build
  /// through this and stay byte-identical).
  ReconstructionModel(const Basis& basis, std::size_t k,
                      SensorLocations sensors, numerics::Vector mean_map);
  /// Expansion backend chosen per model. kDense64 options reproduce the
  /// four-argument form exactly.
  ReconstructionModel(const Basis& basis, std::size_t k,
                      SensorLocations sensors, numerics::Vector mean_map,
                      const ExpansionOptions& expansion);

  std::size_t order() const { return k_; }
  std::size_t sensor_count() const { return sensors_.size(); }
  std::size_t cell_count() const { return mean_map_.size(); }
  const SensorLocations& sensors() const { return sensors_; }
  const numerics::Vector& mean_map() const { return mean_map_; }
  const numerics::Vector& mean_at_sensors() const { return mean_at_sensors_; }

  /// The sampled basis Psi~ (sensors x k); the factor cache reads single
  /// rows of it to downdate, and row subsets to refactor.
  const numerics::Matrix& sampled_basis() const { return factor_.sampled; }

  /// The full basis slice V_k (N x k, orthonormal columns) — the online
  /// retrainer's warm start for refreshing the basis (PcaOptions::
  /// warm_start), and anyone else's read-only window on the subspace.
  const numerics::Matrix& subspace() const { return subspace_; }

  /// sigma_max / sigma_min of Psi~ with every sensor alive — the
  /// conditioning of the undegraded inverse problem (Fig. 5).
  double condition_number() const { return factor_.condition; }

  /// QR of the full-sensor Psi~, shared by the no-dropout hot path.
  const numerics::HouseholderQr& full_factor() const { return factor_.solver; }

  /// The expansion-tail configuration this model was built with; the
  /// online retrainer copies it into replacement models.
  const ExpansionOptions& expansion_options() const { return expansion_; }
  ExpansionBackend expansion_backend() const { return expansion_.backend; }

  /// Resident bytes of the active expansion operator (dense transpose,
  /// blocked-CSR arrays, or fp32 operator + bias copy).
  std::size_t expansion_bytes() const;
  /// Bytes the dense fp64 operator (k x N doubles) would take — the
  /// baseline sparse/fp32 memory reductions are measured against.
  std::size_t dense_expansion_bytes() const {
    return k_ * mean_map_.size() * sizeof(double);
  }
  /// kSparse64: stored blocks / total blocks (1.0 otherwise).
  double sparse_stored_density() const;
  /// kSparse64: relative Frobenius mass dropped by thresholding (0.0
  /// otherwise).
  double sparse_dropped_mass() const;
  /// kFp32: expansion error measured against the fp64 operator over a
  /// deterministic probe batch at construction (0.0 otherwise). The
  /// registry enforces expansion_options().fp32_error_budget against this
  /// at publish time.
  double fp32_measured_error() const { return fp32_measured_error_; }

  /// Workspace doubles reconstruct_into / reconstruct_batch_into need for
  /// up to `frames` frames. Also covers the masked paths a FactorCache
  /// built on this model drives through the same workspace, so one
  /// reservation serves a worker whatever masks arrive.
  std::size_t workspace_doubles(std::size_t frames) const;

  /// Sensor readings for a full map (just the sampled entries).
  void sample_into(numerics::ConstVectorView map,
                   numerics::VectorView readings) const;
  numerics::Vector sample(numerics::ConstVectorView map) const;

  /// Full-map estimate from readings: mean + V_k * lstsq(Psi~, y - mean~),
  /// written into `out` (cell_count() entries). Bit-identical to
  /// reconstruct().
  void reconstruct_into(numerics::ConstVectorView readings,
                        numerics::VectorView out, Workspace& workspace) const;
  numerics::Vector reconstruct(numerics::ConstVectorView readings) const;

  /// Batched reconstruction: row f of `readings` (frames x sensors) is one
  /// sensor frame, row f of `out` (frames x N) its full-map estimate.
  /// One multi-RHS solve against the cached QR plus one blocked GEMM
  /// (DESIGN.md §8). Bit-identical to reconstruct_batch().
  void reconstruct_batch_into(numerics::ConstMatrixView readings,
                              numerics::MatrixView out,
                              Workspace& workspace) const;
  numerics::Matrix reconstruct_batch(numerics::ConstMatrixView readings) const;

  /// Expands coefficient rows (batch x k) through the subspace on top of
  /// the mean map: mean + alpha V_k^T, one blocked GEMM. The tail of every
  /// reconstruction, shared by the full and degraded (masked) paths.
  void expand_into(numerics::ConstMatrixView alpha,
                   numerics::MatrixView out) const;
  numerics::Matrix expand(numerics::ConstMatrixView alpha) const;

 private:
  // Sampled basis, its QR, and its conditioning, built together so the
  // sensor rows are extracted and rank-checked exactly once.
  struct SampledFactor {
    numerics::Matrix sampled;  // sensors x k sampled basis Psi~
    numerics::HouseholderQr solver;
    double condition;
  };
  static SampledFactor factor_sampled(const Basis& basis, std::size_t k,
                                      const SensorLocations& sensors);

  std::size_t k_;
  SensorLocations sensors_;
  numerics::Vector mean_map_;
  numerics::Vector mean_at_sensors_;
  ExpansionOptions expansion_;
  numerics::Matrix subspace_;    // N x k copy of the leading basis columns
  // k x N transpose for the batched GEMM. Only the dense backend keeps it;
  // sparse/fp32 models release it after building their operator, which is
  // where the memory win comes from.
  numerics::Matrix subspace_t_;
  sparse::BlockedCsr sparse_operator_;  // kSparse64
  std::vector<float> f32_operator_;     // kFp32: k x N row-major
  std::vector<float> f32_bias_;         // kFp32: mean map, N floats
  double fp32_measured_error_ = 0.0;
  SampledFactor factor_;
};

}  // namespace eigenmaps::core

#endif  // EIGENMAPS_CORE_MODEL_H
