// The immutable half of the reconstruction stack: basis slice, mean map,
// sensor set, and the full-sensor QR factor, shared read-only between the
// serving engine, the per-mask factor cache, and any number of threads.
#ifndef EIGENMAPS_CORE_MODEL_H
#define EIGENMAPS_CORE_MODEL_H

#include <cstddef>

#include "core/allocation.h"
#include "core/basis.h"
#include "numerics/qr.h"

namespace eigenmaps::core {

/// Everything a trained reconstruction needs, frozen at construction: the
/// order-k basis slice V_k (and its transpose for the batched GEMM), the
/// mean map, the sensor locations, the sampled basis Psi~ (sensors x k)
/// and its QR factor. Construction throws std::invalid_argument when Psi~
/// is rank deficient (Theorem 1's feasibility condition) or k exceeds the
/// sensor count. Immutable after construction, so it is safe to share
/// across threads and to hot-swap behind a registry without draining
/// in-flight work — old jobs keep their shared_ptr, new jobs resolve the
/// replacement.
class ReconstructionModel {
 public:
  ReconstructionModel(const Basis& basis, std::size_t k,
                      SensorLocations sensors, numerics::Vector mean_map);

  std::size_t order() const { return k_; }
  std::size_t sensor_count() const { return sensors_.size(); }
  std::size_t cell_count() const { return mean_map_.size(); }
  const SensorLocations& sensors() const { return sensors_; }
  const numerics::Vector& mean_map() const { return mean_map_; }
  const numerics::Vector& mean_at_sensors() const { return mean_at_sensors_; }

  /// The sampled basis Psi~ (sensors x k); the factor cache reads single
  /// rows of it to downdate, and row subsets to refactor.
  const numerics::Matrix& sampled_basis() const { return factor_.sampled; }

  /// sigma_max / sigma_min of Psi~ with every sensor alive — the
  /// conditioning of the undegraded inverse problem (Fig. 5).
  double condition_number() const { return factor_.condition; }

  /// QR of the full-sensor Psi~, shared by the no-dropout hot path.
  const numerics::HouseholderQr& full_factor() const { return factor_.solver; }

  /// Sensor readings for a full map (just the sampled entries).
  numerics::Vector sample(const numerics::Vector& map) const;

  /// Full-map estimate from readings: mean + V_k * lstsq(Psi~, y - mean~).
  numerics::Vector reconstruct(const numerics::Vector& readings) const;

  /// Batched reconstruction: row f of `readings` (frames x sensors) is one
  /// sensor frame, row f of the result (frames x N) its full-map estimate.
  /// One multi-RHS solve against the cached QR plus one blocked GEMM
  /// (DESIGN.md §8).
  numerics::Matrix reconstruct_batch(const numerics::Matrix& readings) const;

  /// Expands coefficient rows (batch x k) through the subspace on top of
  /// the mean map: mean + alpha V_k^T, one blocked GEMM. The tail of every
  /// reconstruction, shared by the full and degraded (masked) paths.
  numerics::Matrix expand(const numerics::Matrix& alpha) const;

 private:
  // Sampled basis, its QR, and its conditioning, built together so the
  // sensor rows are extracted and rank-checked exactly once.
  struct SampledFactor {
    numerics::Matrix sampled;  // sensors x k sampled basis Psi~
    numerics::HouseholderQr solver;
    double condition;
  };
  static SampledFactor factor_sampled(const Basis& basis, std::size_t k,
                                      const SensorLocations& sensors);

  std::size_t k_;
  SensorLocations sensors_;
  numerics::Vector mean_map_;
  numerics::Vector mean_at_sensors_;
  numerics::Matrix subspace_;    // N x k copy of the leading basis columns
  numerics::Matrix subspace_t_;  // k x N transpose, for the batched GEMM
  SampledFactor factor_;
};

}  // namespace eigenmaps::core

#endif  // EIGENMAPS_CORE_MODEL_H
