// The immutable half of the reconstruction stack: basis slice, mean map,
// sensor set, and the full-sensor QR factor, shared read-only between the
// serving engine, the per-mask factor cache, and any number of threads.
#ifndef EIGENMAPS_CORE_MODEL_H
#define EIGENMAPS_CORE_MODEL_H

#include <cstddef>

#include "core/allocation.h"
#include "core/basis.h"
#include "core/workspace.h"
#include "numerics/qr.h"

namespace eigenmaps::core {

/// Everything a trained reconstruction needs, frozen at construction: the
/// order-k basis slice V_k (and its transpose for the batched GEMM), the
/// mean map, the sensor locations, the sampled basis Psi~ (sensors x k)
/// and its QR factor. Construction throws std::invalid_argument when Psi~
/// is rank deficient (Theorem 1's feasibility condition) or k exceeds the
/// sensor count. Immutable after construction, so it is safe to share
/// across threads and to hot-swap behind a registry without draining
/// in-flight work — old jobs keep their shared_ptr, new jobs resolve the
/// replacement.
///
/// The `_into` methods are the steady-state serving path: caller-provided
/// outputs plus a reusable Workspace mean zero heap allocations per frame
/// once the workspace is warm (DESIGN.md §10). The value-returning forms
/// delegate to them through a thread-local workspace.
class ReconstructionModel {
 public:
  ReconstructionModel(const Basis& basis, std::size_t k,
                      SensorLocations sensors, numerics::Vector mean_map);

  std::size_t order() const { return k_; }
  std::size_t sensor_count() const { return sensors_.size(); }
  std::size_t cell_count() const { return mean_map_.size(); }
  const SensorLocations& sensors() const { return sensors_; }
  const numerics::Vector& mean_map() const { return mean_map_; }
  const numerics::Vector& mean_at_sensors() const { return mean_at_sensors_; }

  /// The sampled basis Psi~ (sensors x k); the factor cache reads single
  /// rows of it to downdate, and row subsets to refactor.
  const numerics::Matrix& sampled_basis() const { return factor_.sampled; }

  /// The full basis slice V_k (N x k, orthonormal columns) — the online
  /// retrainer's warm start for refreshing the basis (PcaOptions::
  /// warm_start), and anyone else's read-only window on the subspace.
  const numerics::Matrix& subspace() const { return subspace_; }

  /// sigma_max / sigma_min of Psi~ with every sensor alive — the
  /// conditioning of the undegraded inverse problem (Fig. 5).
  double condition_number() const { return factor_.condition; }

  /// QR of the full-sensor Psi~, shared by the no-dropout hot path.
  const numerics::HouseholderQr& full_factor() const { return factor_.solver; }

  /// Workspace doubles reconstruct_into / reconstruct_batch_into need for
  /// up to `frames` frames. Also covers the masked paths a FactorCache
  /// built on this model drives through the same workspace, so one
  /// reservation serves a worker whatever masks arrive.
  std::size_t workspace_doubles(std::size_t frames) const;

  /// Sensor readings for a full map (just the sampled entries).
  void sample_into(numerics::ConstVectorView map,
                   numerics::VectorView readings) const;
  numerics::Vector sample(numerics::ConstVectorView map) const;

  /// Full-map estimate from readings: mean + V_k * lstsq(Psi~, y - mean~),
  /// written into `out` (cell_count() entries). Bit-identical to
  /// reconstruct().
  void reconstruct_into(numerics::ConstVectorView readings,
                        numerics::VectorView out, Workspace& workspace) const;
  numerics::Vector reconstruct(numerics::ConstVectorView readings) const;

  /// Batched reconstruction: row f of `readings` (frames x sensors) is one
  /// sensor frame, row f of `out` (frames x N) its full-map estimate.
  /// One multi-RHS solve against the cached QR plus one blocked GEMM
  /// (DESIGN.md §8). Bit-identical to reconstruct_batch().
  void reconstruct_batch_into(numerics::ConstMatrixView readings,
                              numerics::MatrixView out,
                              Workspace& workspace) const;
  numerics::Matrix reconstruct_batch(numerics::ConstMatrixView readings) const;

  /// Expands coefficient rows (batch x k) through the subspace on top of
  /// the mean map: mean + alpha V_k^T, one blocked GEMM. The tail of every
  /// reconstruction, shared by the full and degraded (masked) paths.
  void expand_into(numerics::ConstMatrixView alpha,
                   numerics::MatrixView out) const;
  numerics::Matrix expand(numerics::ConstMatrixView alpha) const;

 private:
  // Sampled basis, its QR, and its conditioning, built together so the
  // sensor rows are extracted and rank-checked exactly once.
  struct SampledFactor {
    numerics::Matrix sampled;  // sensors x k sampled basis Psi~
    numerics::HouseholderQr solver;
    double condition;
  };
  static SampledFactor factor_sampled(const Basis& basis, std::size_t k,
                                      const SensorLocations& sensors);

  std::size_t k_;
  SensorLocations sensors_;
  numerics::Vector mean_map_;
  numerics::Vector mean_at_sensors_;
  numerics::Matrix subspace_;    // N x k copy of the leading basis columns
  numerics::Matrix subspace_t_;  // k x N transpose, for the batched GEMM
  SampledFactor factor_;
};

}  // namespace eigenmaps::core

#endif  // EIGENMAPS_CORE_MODEL_H
