// Reusable scratch arena for the zero-allocation reconstruction path.
//
// A Workspace is a single 64-byte-aligned backing buffer handed out as
// bump-allocated blocks. The `_into` entry points (ReconstructionModel,
// FactorCache) begin() it with their exact need and carve centered
// readings, coefficients and solver scratch out of it; begin() grows the
// backing only when the need exceeds everything seen before, so a warmed
// workspace serves every subsequent frame and batch without touching the
// heap (DESIGN.md §10). Growth is counted, which is how the engine's
// steady-state allocation counter proves the invariant.
//
// Not thread-safe: one Workspace per thread (the engine keeps one per
// worker). Blocks are 64-byte aligned so AVX-512 loads on workspace
// slices never straddle a cache line.
#ifndef EIGENMAPS_CORE_WORKSPACE_H
#define EIGENMAPS_CORE_WORKSPACE_H

#include <cstddef>
#include <cstdint>
#include <new>
#include <stdexcept>
#include <utility>

#include "numerics/matrix.h"

namespace eigenmaps::core {

class Workspace {
 public:
  /// Alignment of the backing buffer and of every block, in bytes.
  static constexpr std::size_t kAlignment = 64;
  static constexpr std::size_t kAlignDoubles = kAlignment / sizeof(double);

  /// Doubles `count` occupies inside a workspace (rounded up to the block
  /// alignment); sizing helpers sum this over their blocks.
  static constexpr std::size_t padded(std::size_t count) {
    return (count + kAlignDoubles - 1) & ~(kAlignDoubles - 1);
  }

  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;
  Workspace(Workspace&& other) noexcept { swap(other); }
  Workspace& operator=(Workspace&& other) noexcept {
    swap(other);
    return *this;
  }
  ~Workspace() {
    if (data_ != nullptr) {
      ::operator delete[](data_, std::align_val_t{kAlignment});
    }
  }

  /// Starts a fresh carve of `doubles` doubles (in padded() units),
  /// discarding all previously handed-out blocks. Grows the backing buffer
  /// only when `doubles` exceeds the current capacity; returns true when
  /// it grew (i.e. heap-allocated).
  bool begin(std::size_t doubles) {
    used_ = 0;
    if (doubles <= capacity_) return false;
    if (data_ != nullptr) {
      ::operator delete[](data_, std::align_val_t{kAlignment});
      data_ = nullptr;
      capacity_ = 0;
    }
    data_ = static_cast<double*>(::operator new[](
        doubles * sizeof(double), std::align_val_t{kAlignment}));
    capacity_ = doubles;
    ++growths_;
    return true;
  }

  /// The next `count` doubles (64-byte aligned). Only valid until the next
  /// begin(). Exceeding the begin() reservation is a sizing bug, not a
  /// runtime condition, hence logic_error.
  double* alloc(std::size_t count) {
    const std::size_t take = padded(count);
    if (used_ + take > capacity_) {
      throw std::logic_error("Workspace: block exceeds begin() reservation");
    }
    double* block = data_ + used_;
    used_ += take;
    return block;
  }

  numerics::VectorView alloc_vector(std::size_t size) {
    return numerics::VectorView(alloc(size), size);
  }
  numerics::MatrixView alloc_matrix(std::size_t rows, std::size_t cols) {
    return numerics::MatrixView(alloc(rows * cols), rows, cols, cols);
  }

  std::size_t capacity() const { return capacity_; }
  /// Times begin() had to heap-allocate; flat once the workspace is warm.
  std::uint64_t growths() const { return growths_; }

 private:
  void swap(Workspace& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(capacity_, other.capacity_);
    std::swap(used_, other.used_);
    std::swap(growths_, other.growths_);
  }

  double* data_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
  std::uint64_t growths_ = 0;
};

/// Delegation arena for the value-returning convenience wrappers
/// (ReconstructionModel::reconstruct, FactorCache::reconstruct_batch, ...):
/// one warmed arena per thread, shared by every wrapper on it, so the
/// wrappers stay allocation-light without the caller owning a Workspace.
/// The serving engine does not use this — its workers pass their own.
inline Workspace& wrapper_workspace() {
  thread_local Workspace workspace;
  return workspace;
}

}  // namespace eigenmaps::core

#endif  // EIGENMAPS_CORE_WORKSPACE_H
