#include "core/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eigenmaps::core {

ReconstructionErrors evaluate_reconstruction(const Reconstructor& rec,
                                             const numerics::Matrix& maps,
                                             NoiseModel* noise) {
  if (maps.rows() == 0) {
    throw std::invalid_argument("evaluate_reconstruction: no maps");
  }
  ReconstructionErrors errors;
  for (std::size_t t = 0; t < maps.rows(); ++t) {
    // Read-only access: a view, not a copied row.
    const numerics::ConstVectorView original = maps.row_view(t);
    numerics::Vector readings = rec.sample(original);
    if (noise != nullptr) noise->perturb(readings);
    const numerics::Vector estimate = rec.reconstruct(readings);
    double sq_sum = 0.0;
    for (std::size_t i = 0; i < original.size(); ++i) {
      const double d = original[i] - estimate[i];
      const double sq = d * d;
      sq_sum += sq;
      errors.max_sq = std::max(errors.max_sq, sq);
    }
    errors.mse += sq_sum / static_cast<double>(original.size());
  }
  errors.mse /= static_cast<double>(maps.rows());
  return errors;
}

double sensor_residual_rms(numerics::ConstVectorView readings,
                           numerics::ConstVectorView map,
                           const SensorLocations& sensors,
                           const std::vector<std::size_t>& slots) {
  if (readings.size() != sensors.size()) {
    throw std::invalid_argument("sensor_residual_rms: readings size mismatch");
  }
  const auto slot_residual_sq = [&](std::size_t slot) {
    if (slot >= sensors.size() || sensors[slot] >= map.size()) {
      throw std::invalid_argument("sensor_residual_rms: slot out of range");
    }
    const double d = readings[slot] - map[sensors[slot]];
    return d * d;
  };
  double sum = 0.0;
  std::size_t count = 0;
  if (slots.empty()) {
    for (std::size_t s = 0; s < sensors.size(); ++s) {
      sum += slot_residual_sq(s);
    }
    count = sensors.size();
  } else {
    for (const std::size_t s : slots) sum += slot_residual_sq(s);
    count = slots.size();
  }
  if (count == 0) return 0.0;
  return std::sqrt(sum / static_cast<double>(count));
}

double signal_energy_per_cell(const numerics::Matrix& centered_maps) {
  if (centered_maps.rows() == 0 || centered_maps.cols() == 0) {
    throw std::invalid_argument("signal_energy_per_cell: empty matrix");
  }
  double total = 0.0;
  for (const double v : centered_maps.storage()) total += v * v;
  return total / (static_cast<double>(centered_maps.rows()) *
                  static_cast<double>(centered_maps.cols()));
}

}  // namespace eigenmaps::core
