#include "core/snapshot_set.h"

#include <stdexcept>

namespace eigenmaps::core {

SnapshotSet::SnapshotSet(numerics::Matrix maps) : maps_(std::move(maps)) {
  mean_ = numerics::row_mean(maps_);
}

SnapshotSet SnapshotSet::subsample(std::size_t stride) const {
  if (stride == 0) throw std::invalid_argument("subsample: stride must be > 0");
  const std::size_t kept = (count() + stride - 1) / stride;
  numerics::Matrix out(kept, cell_count());
  for (std::size_t i = 0; i < kept; ++i) {
    const double* src = maps_.row_data(i * stride);
    double* dst = out.row_data(i);
    for (std::size_t j = 0; j < cell_count(); ++j) dst[j] = src[j];
  }
  return SnapshotSet(std::move(out));
}

std::pair<SnapshotSet, SnapshotSet> SnapshotSet::split(
    std::size_t first_count) const {
  if (first_count > count()) {
    throw std::invalid_argument("split: first_count exceeds snapshot count");
  }
  numerics::Matrix head(first_count, cell_count());
  numerics::Matrix tail(count() - first_count, cell_count());
  for (std::size_t i = 0; i < first_count; ++i) {
    const double* src = maps_.row_data(i);
    double* dst = head.row_data(i);
    for (std::size_t j = 0; j < cell_count(); ++j) dst[j] = src[j];
  }
  for (std::size_t i = first_count; i < count(); ++i) {
    const double* src = maps_.row_data(i);
    double* dst = tail.row_data(i - first_count);
    for (std::size_t j = 0; j < cell_count(); ++j) dst[j] = src[j];
  }
  return {SnapshotSet(std::move(head)), SnapshotSet(std::move(tail))};
}

}  // namespace eigenmaps::core
