// Degraded-mode reconstruction: an LRU of per-dropout-pattern QR factors.
//
// A production thermal-map service loses sensors at runtime. Theorem 1's
// feasibility condition and the conditioning analysis (Fig. 5) are stated
// for one fixed sensor set, so every distinct survivor set is a distinct
// inverse problem with its own factor, rank guard, and condition number.
// The cache keys factors by the active-sensor bitmask and builds each one
// lazily — by Givens row-downdating the full-sensor R for small dropout
// counts, by refactoring the surviving rows otherwise — re-enforcing the
// rank guard and a condition-number ceiling per mask.
#ifndef EIGENMAPS_CORE_FACTOR_CACHE_H
#define EIGENMAPS_CORE_FACTOR_CACHE_H

#include <array>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/model.h"
#include "core/workspace.h"

namespace eigenmaps::core {

/// Which of a model's sensors are alive; bit s set = sensor slot s is
/// reporting. A default-constructed (empty) mask means "all sensors".
///
/// Masks up to kInlineSensors sensors live entirely inline (no heap), so
/// the serving path can copy one into every batch job without allocating —
/// part of the zero-allocation steady-state invariant (DESIGN.md §10).
class SensorBitmask {
 public:
  /// Sensor slots held without heap storage (4 x 64). Wider masks spill to
  /// a heap vector and still work; they just cost an allocation per copy.
  static constexpr std::size_t kInlineSensors = 256;

  SensorBitmask() = default;
  /// All `sensor_count` sensors alive (or dead, with all_active = false).
  explicit SensorBitmask(std::size_t sensor_count, bool all_active = true);
  /// All alive except the listed slots.
  static SensorBitmask except(std::size_t sensor_count,
                              const std::vector<std::size_t>& dropped);

  /// Sensor slots covered (0 for the default "all sensors" mask).
  std::size_t size() const { return count_; }
  std::size_t active_count() const;
  bool active(std::size_t slot) const;
  void set(std::size_t slot, bool alive);
  bool all_active() const { return active_count() == count_; }
  std::vector<std::size_t> active_slots() const;

  bool operator==(const SensorBitmask& other) const;
  bool operator!=(const SensorBitmask& other) const {
    return !(*this == other);
  }
  /// FNV-1a over the packed words; the cache's unordered_map key hash.
  std::size_t hash() const;

 private:
  static constexpr std::size_t kInlineWords = kInlineSensors / 64;

  std::size_t word_count() const { return (count_ + 63) / 64; }
  const std::uint64_t* words() const {
    return overflow_.empty() ? inline_.data() : overflow_.data();
  }
  std::uint64_t* words() {
    return overflow_.empty() ? inline_.data() : overflow_.data();
  }

  std::size_t count_ = 0;
  std::array<std::uint64_t, kInlineWords> inline_ = {};
  std::vector<std::uint64_t> overflow_;  // used only past kInlineSensors
};

struct SensorBitmaskHash {
  std::size_t operator()(const SensorBitmask& mask) const {
    return mask.hash();
  }
};

struct FactorCacheOptions {
  /// LRU capacity in dropout patterns (the full-sensor pattern bypasses the
  /// cache and costs no slot). Clamped to at least 1.
  std::size_t capacity = 64;
  /// A survivor set is rank deficient when sigma_min/sigma_max of its
  /// sampled basis falls below this (Theorem 1's guard, same convention as
  /// GreedyOptions::rank_tolerance).
  double rank_tolerance = 1e-8;
  /// Masks whose factor conditions worse than this are rejected: past the
  /// ceiling the reconstruction amplifies sensor noise beyond use (Fig. 5)
  /// and the caller should fall back (fewer orders, interpolation, ...).
  double condition_ceiling = 1e8;
  /// Dropout counts up to this build their factor by O(k^2)-per-row Givens
  /// downdates of the full-sensor R; beyond it the surviving rows are
  /// refactored from scratch (O(m k^2), exact).
  std::size_t downdate_limit = 4;
  /// A downdated factor is only trusted while its (1-norm) condition
  /// estimate stays below this: corrected seminormal equations hold
  /// QR-level accuracy only while cond^2 * eps << 1, well short of
  /// condition_ceiling. Estimates past it (or rank loss mid-downdate)
  /// fall back to the exact refactorization, which alone decides
  /// acceptance — the inexact estimate never rejects a mask.
  double downdate_condition_limit = 1e6;
};

/// Monotonic counters; read with FactorCache::stats().
struct FactorCacheStats {
  std::uint64_t hits = 0;       // factor served from the cache
  std::uint64_t misses = 0;     // factor had to be built
  std::uint64_t downdates = 0;  // ... by downdating the full-sensor R
  std::uint64_t refactors = 0;  // ... by refactoring the surviving rows
  std::uint64_t evictions = 0;  // LRU entries dropped at capacity
  std::uint64_t rejections = 0; // masks refused: rank loss / past ceiling
  /// Batches served on the undegraded full-sensor path, which bypasses
  /// the cache entirely — kept out of hits so the hit rate measures the
  /// cache, not the absence of dropout.
  std::uint64_t full_mask_batches = 0;
};

/// One survivor set's solver, immutable once built: solve_batch maps
/// centered compacted readings (frames x active) to coefficients
/// (frames x k). Shared out of the cache by shared_ptr, so eviction never
/// invalidates a factor a worker is mid-solve on.
class MaskedFactor {
 public:
  enum class Method {
    kFullFactor,  // all sensors alive: the model's own factor, borrowed
    kRefactored,  // fresh Householder QR of the surviving rows
    kDowndated,   // Givens-downdated R + corrected seminormal equations
  };

  const SensorBitmask& mask() const { return mask_; }
  /// Surviving sensor slots, ascending; the reading-compaction map.
  const std::vector<std::size_t>& active_slots() const { return active_; }
  double condition() const { return condition_; }
  Method method() const { return method_; }

  /// Scratch doubles solve_batch_into needs (independent of batch size);
  /// always within ReconstructionModel::workspace_doubles' scratch term.
  std::size_t solve_scratch_doubles() const;

  /// Heap bytes this factor holds beyond the model it serves: the solver
  /// matrices plus the survivor-slot map. The full-sensor variant borrows
  /// the model's factor and reports only its own bookkeeping.
  std::size_t resident_bytes() const;

  /// Coefficients for centered compacted readings (frames x active) into
  /// `alpha` (frames x k), allocation-free given `scratch`.
  void solve_batch_into(numerics::ConstMatrixView centered,
                        numerics::MatrixView alpha,
                        numerics::VectorView scratch) const;
  numerics::Matrix solve_batch(numerics::ConstMatrixView centered) const;

 private:
  friend class FactorCache;
  MaskedFactor(SensorBitmask mask, std::vector<std::size_t> active,
               double condition, numerics::HouseholderQr qr);
  MaskedFactor(SensorBitmask mask, std::vector<std::size_t> active,
               double condition, numerics::SeminormalSolver seminormal);
  /// Full-sensor variant: borrows (and keeps alive) the model's own
  /// factor instead of recomputing it.
  MaskedFactor(SensorBitmask mask, std::vector<std::size_t> active,
               std::shared_ptr<const ReconstructionModel> model);

  SensorBitmask mask_;
  std::vector<std::size_t> active_;
  double condition_;
  Method method_;
  std::optional<numerics::HouseholderQr> qr_;
  std::optional<numerics::SeminormalSolver> seminormal_;
  std::shared_ptr<const ReconstructionModel> full_model_;
};

/// Thread-safe mask-keyed LRU of MaskedFactors over one immutable model,
/// plus the degraded-mode reconstruction entry point. Throws
/// std::invalid_argument when a mask cannot be served: fewer survivors
/// than the model order or a rank-deficient survivor set (Theorem 1), or
/// conditioning past the ceiling.
class FactorCache {
 public:
  explicit FactorCache(std::shared_ptr<const ReconstructionModel> model,
                       FactorCacheOptions options = {});

  const ReconstructionModel& model() const { return *model_; }
  const FactorCacheOptions& options() const { return options_; }

  /// The factor for `mask`, built on first use. An empty mask resolves to
  /// the full-sensor pattern, which is permanently resident (no LRU slot,
  /// never a miss). Masks the cache has already rejected fail again
  /// immediately, without repeating the build.
  std::shared_ptr<const MaskedFactor> factor(const SensorBitmask& mask);

  /// factor() without the serving-side hit accounting: resolves (building
  /// and caching if needed, counting the miss) but a resident factor does
  /// not count as a hit. Producers validating a mask ahead of enqueueing
  /// use this so warm-up lookups cannot inflate the reported hit rate.
  void validate(const SensorBitmask& mask);

  /// Batched degraded-mode reconstruction into `out` (frames x N).
  /// `readings` stays full width (frames x sensor_count) — dead sensors
  /// keep their slot and their values are ignored — so producers never
  /// re-pack frames as sensors come and go. The full-sensor mask takes the
  /// model's undegraded path bit for bit. Allocation-free once `workspace`
  /// is warm and the mask's factor is resident (the engine's steady
  /// state); model_->workspace_doubles(frames) bounds the reservation for
  /// every mask.
  void reconstruct_batch_into(numerics::ConstMatrixView readings,
                              const SensorBitmask& mask,
                              numerics::MatrixView out, Workspace& workspace);
  numerics::Matrix reconstruct_batch(numerics::ConstMatrixView readings,
                                     const SensorBitmask& mask);

  FactorCacheStats stats() const;
  /// Resident dropout patterns (full-sensor pattern excluded).
  std::size_t size() const;
  /// Heap bytes the cache currently holds: the downdate seed R plus every
  /// resident factor's solver storage (per-model memory accounting,
  /// surfaced through ModelStats::factor_cache_bytes).
  std::size_t resident_bytes() const;

 private:
  std::shared_ptr<const MaskedFactor> lookup_or_build(
      const SensorBitmask& mask, bool count_hit);
  std::shared_ptr<const MaskedFactor> build(const SensorBitmask& mask) const;

  const std::shared_ptr<const ReconstructionModel> model_;
  const FactorCacheOptions options_;
  numerics::Matrix full_r_;  // R of the full-sensor factor, downdate seed
  // The full-sensor pattern, built once at construction: permanently
  // resident so it can never evict a genuinely degraded mask.
  std::shared_ptr<const MaskedFactor> full_factor_;

  mutable std::mutex mutex_;
  // Front = most recently used. The map indexes into the list.
  using LruEntry =
      std::pair<SensorBitmask, std::shared_ptr<const MaskedFactor>>;
  std::list<LruEntry> lru_;
  std::unordered_map<SensorBitmask, std::list<LruEntry>::iterator,
                     SensorBitmaskHash>
      index_;
  // Negative cache: masks that failed the rank guard or the ceiling.
  // Lookups of a known-bad mask count a rejection (never a miss) and
  // throw without repeating the build. Cleared wholesale if it ever
  // grows absurd, so adversarial mask streams cannot balloon it.
  std::unordered_set<SensorBitmask, SensorBitmaskHash> rejected_;
  FactorCacheStats stats_;
};

}  // namespace eigenmaps::core

#endif  // EIGENMAPS_CORE_FACTOR_CACHE_H
