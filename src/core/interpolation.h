// Model-free baseline: uniform sensor grid + spatial interpolation
// (the Long et al. [9] family the paper compares against).
#ifndef EIGENMAPS_CORE_INTERPOLATION_H
#define EIGENMAPS_CORE_INTERPOLATION_H

#include "core/allocation.h"
#include "floorplan/grid.h"

namespace eigenmaps::core {

/// Near-uniform placement of `sensor_count` sensors over the grid (the
/// native placement for interpolation-based reconstruction).
SensorLocations allocate_uniform_grid(const floorplan::ThermalGrid& grid,
                                      std::size_t sensor_count);

/// Inverse-distance-weighted interpolation from the sensor cells; weights
/// over the four nearest sensors are precomputed per cell.
class InterpolatingReconstructor {
 public:
  InterpolatingReconstructor(const floorplan::ThermalGrid& grid,
                             SensorLocations sensors);

  const SensorLocations& sensors() const { return sensors_; }

  numerics::Vector sample(const numerics::Vector& map) const;
  numerics::Vector reconstruct(const numerics::Vector& readings) const;

 private:
  SensorLocations sensors_;
  std::size_t cell_count_;
  // Per cell: up to four (sensor index, weight) pairs, flattened.
  std::vector<std::size_t> neighbor_index_;
  std::vector<double> neighbor_weight_;
  std::vector<std::size_t> neighbor_count_;
};

}  // namespace eigenmaps::core

#endif  // EIGENMAPS_CORE_INTERPOLATION_H
