// The EigenMaps basis: principal components of the training snapshots.
#ifndef EIGENMAPS_CORE_PCA_BASIS_H
#define EIGENMAPS_CORE_PCA_BASIS_H

#include <cstdint>

#include "core/basis.h"
#include "core/snapshot_set.h"

namespace eigenmaps::core {

enum class PcaMethod {
  /// Eigendecompose the T x T snapshot Gram matrix (exact; the default —
  /// T_train << N for this workload, see DESIGN.md §3).
  kSnapshotGram,
  /// Form the N x N covariance and eigendecompose it (exact; O(N^3), only
  /// sensible for small grids).
  kDenseCovariance,
  /// Matrix-free block orthogonal iteration on the covariance operator
  /// (approximate; never materialises a T x T or N x N matrix).
  kOrthogonalIteration,
};

struct PcaOptions {
  PcaMethod method = PcaMethod::kSnapshotGram;
  std::size_t max_order = 48;
  /// Components with eigenvalue below rank_tolerance * largest are dropped.
  double rank_tolerance = 1e-12;
  /// Orthogonal iteration controls.
  std::size_t iteration_limit = 200;
  double iteration_tolerance = 1e-9;
  std::uint64_t seed = 77;
  /// Optional warm start for kOrthogonalIteration: an N x w matrix (w
  /// columns, typically a previously trained basis) seeding the iteration
  /// block instead of random vectors. When the training distribution has
  /// only drifted, the seeded block is already near the invariant subspace
  /// and the refresh converges in a few sweeps instead of a cold run
  /// (the online adaptation retrainer's path, DESIGN.md §11). Columns
  /// beyond w — and a warm start of the wrong height — fall back to random
  /// initialisation. Non-owning: must outlive the constructor call.
  const numerics::Matrix* warm_start = nullptr;
};

class PcaBasis : public Basis {
 public:
  explicit PcaBasis(const SnapshotSet& training,
                    const PcaOptions& options = {});

  const numerics::Matrix& vectors() const override { return vectors_; }

  /// Covariance eigenvalues, descending. For the exact methods this is the
  /// full computable spectrum (can be longer than max_order); for orthogonal
  /// iteration only the retained leading block is known.
  const numerics::Vector& eigenvalues() const { return eigenvalues_; }

  /// Smallest K whose tail energy fraction sum_{j>=K} lambda_j / sum lambda
  /// is at most `tail_fraction`.
  std::size_t order_for_energy_fraction(double tail_fraction) const;

  /// Eq. 2 of the paper: expected approximation MSE at order k is the tail
  /// eigenvalue sum, reported per cell: (sum_{j>k} lambda_j) / N.
  double theoretical_approximation_mse(std::size_t k) const;

  /// Sweeps kOrthogonalIteration ran before converging (0 for the exact
  /// methods) — how much a warm start saved, observable.
  std::size_t iterations_used() const { return iterations_used_; }

 private:
  numerics::Matrix vectors_;     // N x max_order, orthonormal columns
  numerics::Vector eigenvalues_; // descending
  std::size_t iterations_used_ = 0;
};

}  // namespace eigenmaps::core

#endif  // EIGENMAPS_CORE_PCA_BASIS_H
