// The EigenMaps basis: principal components of the training snapshots.
#ifndef EIGENMAPS_CORE_PCA_BASIS_H
#define EIGENMAPS_CORE_PCA_BASIS_H

#include <cstdint>

#include "core/basis.h"
#include "core/snapshot_set.h"

namespace eigenmaps::core {

enum class PcaMethod {
  /// Eigendecompose the T x T snapshot Gram matrix (exact; the default —
  /// T_train << N for this workload, see DESIGN.md §3).
  kSnapshotGram,
  /// Form the N x N covariance and eigendecompose it (exact; O(N^3), only
  /// sensible for small grids).
  kDenseCovariance,
  /// Matrix-free block orthogonal iteration on the covariance operator
  /// (approximate; never materialises a T x T or N x N matrix).
  kOrthogonalIteration,
};

struct PcaOptions {
  PcaMethod method = PcaMethod::kSnapshotGram;
  std::size_t max_order = 48;
  /// Components with eigenvalue below rank_tolerance * largest are dropped.
  double rank_tolerance = 1e-12;
  /// Orthogonal iteration controls.
  std::size_t iteration_limit = 200;
  double iteration_tolerance = 1e-9;
  std::uint64_t seed = 77;
};

class PcaBasis : public Basis {
 public:
  explicit PcaBasis(const SnapshotSet& training,
                    const PcaOptions& options = {});

  const numerics::Matrix& vectors() const override { return vectors_; }

  /// Covariance eigenvalues, descending. For the exact methods this is the
  /// full computable spectrum (can be longer than max_order); for orthogonal
  /// iteration only the retained leading block is known.
  const numerics::Vector& eigenvalues() const { return eigenvalues_; }

  /// Smallest K whose tail energy fraction sum_{j>=K} lambda_j / sum lambda
  /// is at most `tail_fraction`.
  std::size_t order_for_energy_fraction(double tail_fraction) const;

  /// Eq. 2 of the paper: expected approximation MSE at order k is the tail
  /// eigenvalue sum, reported per cell: (sum_{j>k} lambda_j) / N.
  double theoretical_approximation_mse(std::size_t k) const;

 private:
  numerics::Matrix vectors_;     // N x max_order, orthonormal columns
  numerics::Vector eigenvalues_; // descending
};

}  // namespace eigenmaps::core

#endif  // EIGENMAPS_CORE_PCA_BASIS_H
