// Measurement noise at the paper's SNR definition.
#ifndef EIGENMAPS_CORE_NOISE_H
#define EIGENMAPS_CORE_NOISE_H

#include <cstdint>

#include "numerics/matrix.h"
#include "numerics/rng.h"

namespace eigenmaps::core {

/// Additive white Gaussian sensor noise. The paper defines SNR as the
/// signal-to-noise energy ratio over the centered maps; per sensor that
/// makes the noise variance sigma^2 = E_cell / 10^(SNR_dB / 10), where
/// E_cell is the mean signal energy per cell (core::signal_energy_per_cell).
class NoiseModel {
 public:
  NoiseModel(double snr_db, double signal_energy_per_cell, std::uint64_t seed);

  double sigma() const { return sigma_; }

  /// Adds one noise realisation to the readings in place.
  void perturb(numerics::Vector& readings);

 private:
  double sigma_;
  numerics::Rng rng_;
};

}  // namespace eigenmaps::core

#endif  // EIGENMAPS_CORE_NOISE_H
