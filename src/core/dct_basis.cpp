#include "core/dct_basis.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <tuple>
#include <vector>

namespace eigenmaps::core {

DctBasis::DctBasis(std::size_t height, std::size_t width,
                   std::size_t max_order) {
  if (height == 0 || width == 0) {
    throw std::invalid_argument("DctBasis: empty grid");
  }
  const std::size_t n = height * width;
  const std::size_t order = std::min(max_order, n);
  if (order == 0) throw std::invalid_argument("DctBasis: zero order");

  // Rank all (p, q) mode pairs by total frequency.
  std::vector<std::tuple<std::size_t, std::size_t, std::size_t>> modes;
  modes.reserve(n);
  for (std::size_t p = 0; p < height; ++p) {
    for (std::size_t q = 0; q < width; ++q) {
      modes.emplace_back(p + q, std::max(p, q), p * width + q);
    }
  }
  std::sort(modes.begin(), modes.end());

  const double pi = 3.14159265358979323846;
  vectors_ = numerics::Matrix(n, order);
  for (std::size_t j = 0; j < order; ++j) {
    const std::size_t packed = std::get<2>(modes[j]);
    const std::size_t p = packed / width;
    const std::size_t q = packed % width;
    const double ap = (p == 0) ? std::sqrt(1.0 / static_cast<double>(height))
                               : std::sqrt(2.0 / static_cast<double>(height));
    const double aq = (q == 0) ? std::sqrt(1.0 / static_cast<double>(width))
                               : std::sqrt(2.0 / static_cast<double>(width));
    for (std::size_t r = 0; r < height; ++r) {
      const double cr = std::cos(pi * (2.0 * r + 1.0) * p /
                                 (2.0 * static_cast<double>(height)));
      for (std::size_t c = 0; c < width; ++c) {
        const double cc = std::cos(pi * (2.0 * c + 1.0) * q /
                                   (2.0 * static_cast<double>(width)));
        vectors_(r * width + c, j) = ap * aq * cr * cc;
      }
    }
  }
}

}  // namespace eigenmaps::core
