#include "core/basis.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace eigenmaps::core {

namespace {

void check_args(const Basis& basis, const numerics::Matrix& centered_maps,
                std::size_t k) {
  if (centered_maps.cols() != basis.cell_count()) {
    throw std::invalid_argument("approximation metric: cell count mismatch");
  }
  if (k == 0 || k > basis.max_order()) {
    throw std::invalid_argument("approximation metric: order out of range");
  }
  if (centered_maps.rows() == 0) {
    throw std::invalid_argument("approximation metric: no maps");
  }
}

}  // namespace

double empirical_approximation_mse(const Basis& basis,
                                   const numerics::Matrix& centered_maps,
                                   std::size_t k) {
  check_args(basis, centered_maps, k);
  const numerics::Matrix& v = basis.vectors();
  const std::size_t n = basis.cell_count();
  double total = 0.0;
  std::vector<double> coeff(k);
  for (std::size_t t = 0; t < centered_maps.rows(); ++t) {
    const double* x = centered_maps.row_data(t);
    std::fill(coeff.begin(), coeff.end(), 0.0);
    double energy = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      const double xc = x[c];
      energy += xc * xc;
      const double* vrow = v.row_data(c);
      for (std::size_t j = 0; j < k; ++j) coeff[j] += xc * vrow[j];
    }
    double captured = 0.0;
    for (std::size_t j = 0; j < k; ++j) captured += coeff[j] * coeff[j];
    // Orthonormal columns: residual energy is the Parseval gap. Guard the
    // tiny negative values floating point can leave behind.
    total += std::max(energy - captured, 0.0);
  }
  return total /
         (static_cast<double>(centered_maps.rows()) * static_cast<double>(n));
}

double empirical_approximation_max(const Basis& basis,
                                   const numerics::Matrix& centered_maps,
                                   std::size_t k) {
  check_args(basis, centered_maps, k);
  const numerics::Matrix& v = basis.vectors();
  const std::size_t n = basis.cell_count();
  std::vector<double> coeff(k);
  double worst = 0.0;
  for (std::size_t t = 0; t < centered_maps.rows(); ++t) {
    const double* x = centered_maps.row_data(t);
    std::fill(coeff.begin(), coeff.end(), 0.0);
    for (std::size_t c = 0; c < n; ++c) {
      const double xc = x[c];
      const double* vrow = v.row_data(c);
      for (std::size_t j = 0; j < k; ++j) coeff[j] += xc * vrow[j];
    }
    for (std::size_t c = 0; c < n; ++c) {
      const double* vrow = v.row_data(c);
      double approx = 0.0;
      for (std::size_t j = 0; j < k; ++j) approx += vrow[j] * coeff[j];
      const double r = x[c] - approx;
      worst = std::max(worst, r * r);
    }
  }
  return worst;
}

}  // namespace eigenmaps::core
