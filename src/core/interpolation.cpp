#include "core/interpolation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eigenmaps::core {

namespace {
constexpr std::size_t kNeighbors = 4;
}

SensorLocations allocate_uniform_grid(const floorplan::ThermalGrid& grid,
                                      std::size_t sensor_count) {
  if (sensor_count == 0 || sensor_count > grid.cell_count()) {
    throw std::invalid_argument("allocate_uniform_grid: bad sensor count");
  }
  // Rows x cols layout matching the grid aspect ratio as closely as possible.
  const double aspect = static_cast<double>(grid.height()) /
                        static_cast<double>(grid.width());
  std::size_t rows = static_cast<std::size_t>(std::lround(
      std::sqrt(static_cast<double>(sensor_count) * aspect)));
  rows = std::clamp<std::size_t>(rows, 1, sensor_count);
  const std::size_t cols = (sensor_count + rows - 1) / rows;

  SensorLocations sensors;
  sensors.reserve(sensor_count);
  for (std::size_t r = 0; r < rows && sensors.size() < sensor_count; ++r) {
    for (std::size_t c = 0; c < cols && sensors.size() < sensor_count; ++c) {
      // Cell centers of an evenly spaced rows x cols lattice.
      const std::size_t gr = static_cast<std::size_t>(
          (static_cast<double>(r) + 0.5) / static_cast<double>(rows) *
          static_cast<double>(grid.height()));
      const std::size_t gc = static_cast<std::size_t>(
          (static_cast<double>(c) + 0.5) / static_cast<double>(cols) *
          static_cast<double>(grid.width()));
      sensors.push_back(grid.index(std::min(gr, grid.height() - 1),
                                   std::min(gc, grid.width() - 1)));
    }
  }
  std::sort(sensors.begin(), sensors.end());
  sensors.erase(std::unique(sensors.begin(), sensors.end()), sensors.end());
  // Duplicates can only appear when sensor_count approaches the cell count;
  // top up with the first free cells.
  for (std::size_t i = 0; i < grid.cell_count() && sensors.size() < sensor_count;
       ++i) {
    if (!std::binary_search(sensors.begin(), sensors.end(), i)) {
      sensors.insert(std::lower_bound(sensors.begin(), sensors.end(), i), i);
    }
  }
  return sensors;
}

InterpolatingReconstructor::InterpolatingReconstructor(
    const floorplan::ThermalGrid& grid, SensorLocations sensors)
    : sensors_(std::move(sensors)), cell_count_(grid.cell_count()) {
  if (sensors_.empty()) {
    throw std::invalid_argument("InterpolatingReconstructor: no sensors");
  }
  for (const std::size_t s : sensors_) {
    if (s >= cell_count_) {
      throw std::invalid_argument(
          "InterpolatingReconstructor: sensor out of range");
    }
  }

  neighbor_count_.assign(cell_count_, 0);
  neighbor_index_.assign(cell_count_ * kNeighbors, 0);
  neighbor_weight_.assign(cell_count_ * kNeighbors, 0.0);

  const std::size_t take = std::min(kNeighbors, sensors_.size());
  std::vector<std::pair<double, std::size_t>> dist(sensors_.size());
  for (std::size_t i = 0; i < cell_count_; ++i) {
    for (std::size_t s = 0; s < sensors_.size(); ++s) {
      const double dx = grid.cell_x(i) - grid.cell_x(sensors_[s]);
      const double dy = grid.cell_y(i) - grid.cell_y(sensors_[s]);
      dist[s] = {dx * dx + dy * dy, s};
    }
    std::partial_sort(dist.begin(), dist.begin() + take, dist.end());

    if (dist[0].first == 0.0) {
      // The cell carries a sensor: pass its reading through exactly.
      neighbor_count_[i] = 1;
      neighbor_index_[i * kNeighbors] = dist[0].second;
      neighbor_weight_[i * kNeighbors] = 1.0;
      continue;
    }
    double weight_sum = 0.0;
    for (std::size_t j = 0; j < take; ++j) {
      weight_sum += 1.0 / dist[j].first;  // inverse squared distance
    }
    neighbor_count_[i] = take;
    for (std::size_t j = 0; j < take; ++j) {
      neighbor_index_[i * kNeighbors + j] = dist[j].second;
      neighbor_weight_[i * kNeighbors + j] =
          (1.0 / dist[j].first) / weight_sum;
    }
  }
}

numerics::Vector InterpolatingReconstructor::sample(
    const numerics::Vector& map) const {
  if (map.size() != cell_count_) {
    throw std::invalid_argument(
        "InterpolatingReconstructor::sample: map size mismatch");
  }
  numerics::Vector readings(sensors_.size());
  for (std::size_t s = 0; s < sensors_.size(); ++s) {
    readings[s] = map[sensors_[s]];
  }
  return readings;
}

numerics::Vector InterpolatingReconstructor::reconstruct(
    const numerics::Vector& readings) const {
  if (readings.size() != sensors_.size()) {
    throw std::invalid_argument(
        "InterpolatingReconstructor::reconstruct: readings size mismatch");
  }
  numerics::Vector map(cell_count_, 0.0);
  for (std::size_t i = 0; i < cell_count_; ++i) {
    double v = 0.0;
    for (std::size_t j = 0; j < neighbor_count_[i]; ++j) {
      v += neighbor_weight_[i * kNeighbors + j] *
           readings[neighbor_index_[i * kNeighbors + j]];
    }
    map[i] = v;
  }
  return map;
}

}  // namespace eigenmaps::core
