#include "core/allocation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numerics/svd.h"

namespace eigenmaps::core {

namespace {

constexpr double kZeroRowNorm = 1e-14;

// Workspace for one greedy run over R candidate rows of the sampled basis.
struct GreedyState {
  std::size_t order = 0;
  std::vector<std::size_t> cells;   // candidate cell per row
  std::vector<double> rows;         // R x order, rows normalised
  std::vector<double> norms;        // original row norms
  std::vector<char> alive;
  std::size_t alive_count = 0;
  std::vector<double> best_corr;    // |corr| to the closest other row
  std::vector<std::size_t> best_j;

  double correlation(std::size_t a, std::size_t b) const {
    const double* ra = rows.data() + a * order;
    const double* rb = rows.data() + b * order;
    double s = 0.0;
    for (std::size_t j = 0; j < order; ++j) s += ra[j] * rb[j];
    return std::fabs(s);
  }

  void recompute_best(std::size_t r) {
    best_corr[r] = -1.0;
    best_j[r] = r;
    for (std::size_t s = 0; s < cells.size(); ++s) {
      if (s == r || !alive[s]) continue;
      const double c = correlation(r, s);
      if (c > best_corr[r]) {
        best_corr[r] = c;
        best_j[r] = s;
      }
    }
  }

  // sigma_min / sigma_max of the surviving sampled basis, optionally with
  // one extra row removed.
  double rank_ratio_without(std::size_t excluded) const {
    std::size_t count = 0;
    for (std::size_t r = 0; r < cells.size(); ++r) {
      count += (alive[r] && r != excluded);
    }
    if (count < order) return 0.0;
    numerics::Matrix a(count, order);
    std::size_t out = 0;
    for (std::size_t r = 0; r < cells.size(); ++r) {
      if (!alive[r] || r == excluded) continue;
      // Rank is invariant to the row normalisation applied in `rows`.
      for (std::size_t j = 0; j < order; ++j) a(out, j) = rows[r * order + j];
      ++out;
    }
    const numerics::Vector sv = numerics::singular_values(a);
    if (sv.empty() || sv.front() == 0.0) return 0.0;
    return sv.back() / sv.front();
  }

  void remove(std::size_t victim) {
    alive[victim] = 0;
    --alive_count;
    for (std::size_t r = 0; r < cells.size(); ++r) {
      if (alive[r] && best_j[r] == victim) recompute_best(r);
    }
  }
};

GreedyState build_state(const Basis& basis, std::size_t order,
                        const floorplan::SensorMask* mask) {
  const numerics::Matrix& v = basis.vectors();
  GreedyState st;
  st.order = order;
  for (std::size_t i = 0; i < v.rows(); ++i) {
    if (mask != nullptr && !mask->allowed(i)) continue;
    const double* row = v.row_data(i);
    double nrm = 0.0;
    for (std::size_t j = 0; j < order; ++j) nrm += row[j] * row[j];
    nrm = std::sqrt(nrm);
    // Zero rows see nothing of the subspace; placing a sensor there is
    // useless, so they are dropped before the pairwise stage.
    if (nrm <= kZeroRowNorm) continue;
    st.cells.push_back(i);
    st.norms.push_back(nrm);
    const double inv = 1.0 / nrm;
    for (std::size_t j = 0; j < order; ++j) st.rows.push_back(row[j] * inv);
  }
  const std::size_t r = st.cells.size();
  st.alive.assign(r, 1);
  st.alive_count = r;
  st.best_corr.assign(r, -1.0);
  st.best_j.resize(r);
  for (std::size_t a = 0; a < r; ++a) st.best_j[a] = a;
  // One upper-triangle sweep fills both sides of every best-partner slot.
  for (std::size_t a = 0; a < r; ++a) {
    for (std::size_t b = a + 1; b < r; ++b) {
      const double c = st.correlation(a, b);
      if (c > st.best_corr[a]) {
        st.best_corr[a] = c;
        st.best_j[a] = b;
      }
      if (c > st.best_corr[b]) {
        st.best_corr[b] = c;
        st.best_j[b] = a;
      }
    }
  }
  return st;
}

}  // namespace

SensorLocations allocate_greedy(const Basis& basis, std::size_t order,
                                std::size_t sensor_count,
                                const floorplan::SensorMask* mask,
                                const GreedyOptions& options) {
  if (order == 0 || order > basis.max_order()) {
    throw std::invalid_argument("allocate_greedy: order out of range");
  }
  if (sensor_count < order) {
    throw std::invalid_argument(
        "allocate_greedy: sensor budget below subspace order");
  }
  if (mask != nullptr && mask->size() != basis.cell_count()) {
    throw std::invalid_argument("allocate_greedy: mask size mismatch");
  }

  GreedyState st = build_state(basis, order, mask);
  if (st.alive_count < sensor_count) {
    throw std::invalid_argument(
        "allocate_greedy: fewer informative cells than the sensor budget");
  }

  const std::size_t guard_from =
      std::max(sensor_count, order) + options.rank_check_margin;
  while (st.alive_count > sensor_count) {
    // Most correlated surviving pair.
    std::size_t a = st.cells.size();
    double best = -1.0;
    for (std::size_t r = 0; r < st.cells.size(); ++r) {
      if (st.alive[r] && st.best_corr[r] > best) {
        best = st.best_corr[r];
        a = r;
      }
    }
    if (a == st.cells.size()) {
      throw std::invalid_argument("allocate_greedy: no deletable pair");
    }
    const std::size_t b = st.best_j[a];

    std::size_t preferred, fallback;
    if (options.norm_tiebreak) {
      preferred = (st.norms[a] <= st.norms[b]) ? a : b;
    } else {
      preferred = std::min(a, b);  // "the i-th row", read naively
    }
    fallback = (preferred == a) ? b : a;

    std::size_t victim = preferred;
    if (st.alive_count <= guard_from) {
      if (st.rank_ratio_without(preferred) < options.rank_tolerance) {
        if (st.rank_ratio_without(fallback) < options.rank_tolerance) {
          // Theorem 1's floor: removing either member of the most
          // correlated pair would break rank(Psi~_K) = K.
          throw std::invalid_argument(
              "allocate_greedy: rank guard blocks the budget at this order");
        }
        victim = fallback;
      }
    }
    st.remove(victim);
  }

  if (st.rank_ratio_without(st.cells.size()) < options.rank_tolerance) {
    throw std::invalid_argument(
        "allocate_greedy: final placement is rank deficient");
  }

  SensorLocations sensors;
  sensors.reserve(sensor_count);
  for (std::size_t r = 0; r < st.cells.size(); ++r) {
    if (st.alive[r]) sensors.push_back(st.cells[r]);
  }
  return sensors;  // cells were scanned ascending, so this is sorted
}

SensorLocations allocate_energy_centers(const numerics::Vector& cell_energy,
                                        const floorplan::ThermalGrid& grid,
                                        std::size_t sensor_count) {
  if (cell_energy.size() != grid.cell_count()) {
    throw std::invalid_argument("allocate_energy_centers: size mismatch");
  }
  if (sensor_count == 0 || sensor_count > grid.cell_count()) {
    throw std::invalid_argument("allocate_energy_centers: bad sensor count");
  }

  // Rank blocks by mean energy density.
  const std::size_t blocks = grid.block_count();
  std::vector<double> density(blocks, 0.0);
  std::vector<std::vector<std::size_t>> cells_of(blocks);
  for (std::size_t i = 0; i < grid.cell_count(); ++i) {
    const std::size_t b = grid.block_of_index(i);
    density[b] += cell_energy[i];
    cells_of[b].push_back(i);
  }
  std::vector<std::size_t> ranked;
  for (std::size_t b = 0; b < blocks; ++b) {
    if (!cells_of[b].empty()) {
      density[b] /= static_cast<double>(cells_of[b].size());
      ranked.push_back(b);
    }
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [&](std::size_t x, std::size_t y) {
                     return density[x] > density[y];
                   });

  SensorLocations sensors;
  std::vector<char> taken(grid.cell_count(), 0);
  while (sensors.size() < sensor_count) {
    const std::size_t before = sensors.size();
    for (const std::size_t b : ranked) {
      if (sensors.size() >= sensor_count) break;
      // First visit: the cell closest to the block center. Later rounds:
      // the free cell farthest from every sensor already in this block.
      double block_cx = 0.0, block_cy = 0.0;
      for (const std::size_t i : cells_of[b]) {
        block_cx += grid.cell_x(i);
        block_cy += grid.cell_y(i);
      }
      block_cx /= static_cast<double>(cells_of[b].size());
      block_cy /= static_cast<double>(cells_of[b].size());

      std::size_t pick = grid.cell_count();
      double pick_score = -1.0;
      for (const std::size_t i : cells_of[b]) {
        if (taken[i]) continue;
        double nearest = 1e300;
        for (const std::size_t s : sensors) {
          if (grid.block_of_index(s) != b) continue;  // spread within-block
          const double dx = grid.cell_x(i) - grid.cell_x(s);
          const double dy = grid.cell_y(i) - grid.cell_y(s);
          nearest = std::min(nearest, dx * dx + dy * dy);
        }
        const double dcx = grid.cell_x(i) - block_cx;
        const double dcy = grid.cell_y(i) - block_cy;
        // Prefer spread from existing sensors; break ties toward the
        // block center so the first pick per block is its center cell.
        const double score = std::min(nearest, 1e290) - 1e-6 * (dcx * dcx + dcy * dcy);
        if (score > pick_score) {
          pick_score = score;
          pick = i;
        }
      }
      if (pick < grid.cell_count()) {
        taken[pick] = 1;
        sensors.push_back(pick);
      }
    }
    if (sensors.size() == before) break;  // every cell taken
  }
  std::sort(sensors.begin(), sensors.end());
  return sensors;
}

}  // namespace eigenmaps::core
