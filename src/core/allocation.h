// Sensor placement: the paper's greedy Algorithm 1 and the energy-center
// baseline of [12].
#ifndef EIGENMAPS_CORE_ALLOCATION_H
#define EIGENMAPS_CORE_ALLOCATION_H

#include <cstddef>
#include <vector>

#include "core/basis.h"
#include "floorplan/grid.h"

namespace eigenmaps::core {

/// Grid cell indices carrying a sensor, ascending.
using SensorLocations = std::vector<std::size_t>;

struct GreedyOptions {
  /// Algorithm 1 says "remove the i-th row" of the most correlated pair,
  /// which is ambiguous for a symmetric correlation. When true (default) we
  /// delete the smaller-norm member — it contributes less signal energy;
  /// when false we take the naive reading and delete the first index.
  /// DESIGN.md §4 and ablation_design.cpp quantify the difference.
  bool norm_tiebreak = true;
  /// A placement is rank-deficient when sigma_min/sigma_max of the sampled
  /// basis falls below this; the rank guard refuses such deletions.
  double rank_tolerance = 1e-8;
  /// Deletions are rank-checked once the surviving count is within this
  /// margin of max(sensor_count, order); earlier deletions cannot
  /// realistically lose rank and checking them would dominate the runtime.
  std::size_t rank_check_margin = 8;
};

/// Algorithm 1: start from every (allowed) cell, repeatedly delete one
/// member of the most-correlated row pair of the sampled order-`order`
/// basis until `sensor_count` cells survive. Throws std::invalid_argument
/// when the rank guard cannot reach the budget at this order (Theorem 1
/// requires rank(Psi~_K) = K) — callers retry with a smaller order.
SensorLocations allocate_greedy(const Basis& basis, std::size_t order,
                                std::size_t sensor_count,
                                const floorplan::SensorMask* mask = nullptr,
                                const GreedyOptions& options = {});

/// Energy-center baseline [12]: sensors go to the centers of the blocks
/// that dissipate the most energy; extra sensors beyond the block count
/// spread within the hottest blocks, away from already-placed sensors.
SensorLocations allocate_energy_centers(const numerics::Vector& cell_energy,
                                        const floorplan::ThermalGrid& grid,
                                        std::size_t sensor_count);

}  // namespace eigenmaps::core

#endif  // EIGENMAPS_CORE_ALLOCATION_H
