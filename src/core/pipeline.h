// End-to-end experiment assembly: floorplan -> thermal simulation ->
// snapshot ensemble -> trained bases. The figure harnesses consume one
// Experiment object and nothing else.
#ifndef EIGENMAPS_CORE_PIPELINE_H
#define EIGENMAPS_CORE_PIPELINE_H

#include <cstdint>

#include "core/dct_basis.h"
#include "core/pca_basis.h"
#include "core/snapshot_set.h"
#include "floorplan/floorplan.h"
#include "floorplan/grid.h"

namespace eigenmaps::core {

/// Paper-sized defaults: 60 x 56 grid, 5 workload scenarios x 530 steps =
/// 2650 maps. The default constructor honours EIGENMAPS_* environment
/// overrides (see README) so CI and smoke tests can shrink the experiment
/// without touching the harness sources.
struct ExperimentConfig {
  std::size_t grid_width = 60;
  std::size_t grid_height = 56;
  std::size_t scenario_count = 5;
  std::size_t steps_per_scenario = 530;
  double dt = 2e-3;  // seconds per simulation step
  /// The design-time ensemble is every training_stride-th map.
  std::size_t training_stride = 4;
  std::size_t pca_max_order = 48;
  std::size_t dct_max_order = 48;
  std::uint64_t seed = 42;

  ExperimentConfig();

  std::size_t map_count() const { return scenario_count * steps_per_scenario; }
  std::size_t cell_count() const { return grid_width * grid_height; }
  bool operator==(const ExperimentConfig& other) const;
};

class Experiment {
 public:
  /// Builds grid, training set and both bases from simulated (or cached)
  /// snapshots and the per-cell dissipated energy.
  Experiment(const ExperimentConfig& config, SnapshotSet snapshots,
             numerics::Vector energy);

  const ExperimentConfig& config() const { return config_; }
  const floorplan::Floorplan& plan() const { return plan_; }
  const floorplan::ThermalGrid& grid() const { return grid_; }

  /// All simulated maps, in trace order (the evaluation ensemble).
  const SnapshotSet& snapshots() const { return snapshots_; }
  /// The design-time subsample the bases were trained on.
  const SnapshotSet& training_set() const { return training_; }
  /// Design-time mean map (training-set mean).
  const numerics::Vector& mean_map() const { return training_.mean(); }
  /// snapshots() minus the design-time mean, one map per row.
  const numerics::Matrix& centered_evaluation_maps() const {
    return centered_evaluation_;
  }
  /// Mean dissipated power per cell (W), for the energy-center baseline.
  const numerics::Vector& energy() const { return energy_; }

  const PcaBasis& eigenmaps_basis() const { return eigenmaps_basis_; }
  const DctBasis& dct_basis() const { return dct_basis_; }

 private:
  ExperimentConfig config_;
  floorplan::Floorplan plan_;
  floorplan::ThermalGrid grid_;
  SnapshotSet snapshots_;
  SnapshotSet training_;
  numerics::Matrix centered_evaluation_;
  numerics::Vector energy_;
  PcaBasis eigenmaps_basis_;
  DctBasis dct_basis_;
};

/// Runs the RC thermal simulation over the workload scenarios and returns
/// the assembled experiment. Paper-sized configs take on the order of a
/// minute; use core::build_cached_experiment to amortise across harnesses.
Experiment simulate_experiment(const ExperimentConfig& config);

}  // namespace eigenmaps::core

#endif  // EIGENMAPS_CORE_PIPELINE_H
