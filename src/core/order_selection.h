// Validation-driven choice of the estimation order K for a placement.
//
// Section 3.2 of the paper: raising K shrinks the approximation error
// epsilon but can inflate the reconstruction error epsilon_r through worse
// conditioning (and, with noisy sensors, noise amplification). We sweep
// every feasible K <= k_max and keep the one with the lowest validation MSE
// under the configured noise level.
#ifndef EIGENMAPS_CORE_ORDER_SELECTION_H
#define EIGENMAPS_CORE_ORDER_SELECTION_H

#include <cstdint>
#include <limits>

#include "core/allocation.h"
#include "core/basis.h"
#include "core/metrics.h"

namespace eigenmaps::core {

struct OrderSelectionOptions {
  /// +infinity (default) means noiseless sensors.
  double snr_db = std::numeric_limits<double>::infinity();
  /// Required when snr_db is finite (see core::signal_energy_per_cell).
  double signal_energy_per_cell = 0.0;
  /// Validate on every stride-th map; 0 picks a stride that keeps roughly
  /// 128 validation maps.
  std::size_t validation_stride = 0;
  std::uint64_t noise_seed = 4242;
};

struct OrderSelection {
  std::size_t k = 0;
  double validation_mse = 0.0;
};

/// Throws std::runtime_error when no order in [1, k_max] admits a full-rank
/// sampled basis for this placement.
OrderSelection select_order(const Basis& basis, const SensorLocations& sensors,
                            const numerics::Vector& mean_map,
                            const numerics::Matrix& maps, std::size_t k_max,
                            const OrderSelectionOptions& options = {});

}  // namespace eigenmaps::core

#endif  // EIGENMAPS_CORE_ORDER_SELECTION_H
