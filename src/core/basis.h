// Orthonormal map bases and the basis-level approximation metrics.
#ifndef EIGENMAPS_CORE_BASIS_H
#define EIGENMAPS_CORE_BASIS_H

#include "numerics/matrix.h"

namespace eigenmaps::core {

/// An orthonormal basis of thermal maps: vectors() is N x max_order with
/// orthonormal columns (column j = j-th basis map, flattened row-major).
class Basis {
 public:
  virtual ~Basis() = default;

  virtual const numerics::Matrix& vectors() const = 0;

  std::size_t cell_count() const { return vectors().rows(); }
  std::size_t max_order() const { return vectors().cols(); }
};

/// A basis that simply owns its vectors. The bridge for bases that arrive
/// as raw matrices rather than from a decomposition — deserialized models
/// on a shard worker, hand-built fixtures in tests. The matrix must have
/// orthonormal columns for reconstruction to be meaningful; that is the
/// producer's contract (ReconstructionModel re-checks rank on the sampled
/// rows either way).
class MatrixBasis final : public Basis {
 public:
  explicit MatrixBasis(numerics::Matrix vectors)
      : vectors_(std::move(vectors)) {}
  const numerics::Matrix& vectors() const override { return vectors_; }

 private:
  numerics::Matrix vectors_;
};

/// Mean over maps of ||x - V_k V_k^T x||^2 / N for the centered maps (one
/// per row). Uses Parseval: residual energy = ||x||^2 - ||V_k^T x||^2.
double empirical_approximation_mse(const Basis& basis,
                                   const numerics::Matrix& centered_maps,
                                   std::size_t k);

/// Max over maps and cells of the squared approximation residual.
double empirical_approximation_max(const Basis& basis,
                                   const numerics::Matrix& centered_maps,
                                   std::size_t k);

}  // namespace eigenmaps::core

#endif  // EIGENMAPS_CORE_BASIS_H
