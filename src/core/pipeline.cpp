#include "core/pipeline.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "numerics/rng.h"
#include "support/env.h"
#include "thermal/rc_model.h"

namespace eigenmaps::core {

namespace {

std::size_t env_size(const char* name, std::size_t fallback,
                     bool allow_zero = false) {
  return support::env_size_or(name, fallback, allow_zero ? 0 : 1);
}

// Per-block activity with Ornstein-Uhlenbeck-style dynamics; the scenario
// index picks which cores run hot so the five traces span distinct
// workload mixes (full load, half load, checkerboard, two hot cores,
// migrating load).
class ScenarioPower {
 public:
  ScenarioPower(const floorplan::Floorplan& plan, std::size_t scenario,
                numerics::Rng* rng)
      : plan_(&plan), scenario_(scenario), rng_(rng) {
    activity_.assign(plan.block_count(), 0.3);
    core_index_.assign(plan.block_count(), 0);
    std::size_t core = 0;
    for (std::size_t b = 0; b < plan.block_count(); ++b) {
      if (plan.block(b).type == floorplan::BlockType::kCore) {
        core_index_[b] = core++;
      }
    }
    core_count_ = core;
    step_ = 0;
  }

  void advance() {
    ++step_;
    const double mean_core_target = update_core_targets();
    for (std::size_t b = 0; b < activity_.size(); ++b) {
      double target;
      if (plan_->block(b).type == floorplan::BlockType::kCore) {
        target = core_target_[core_index_[b]];
      } else {
        // Shared resources load-follow the cores, with their own jitter.
        target = 0.2 + 0.7 * mean_core_target;
      }
      const double noise = 0.05 * rng_->normal();
      activity_[b] += 0.15 * (target - activity_[b]) + noise;
      activity_[b] = std::clamp(activity_[b], 0.0, 1.0);
    }
  }

  numerics::Vector block_power() const {
    numerics::Vector p(activity_.size());
    for (std::size_t b = 0; b < activity_.size(); ++b) {
      double idle = 0.2, busy = 1.0;
      switch (plan_->block(b).type) {
        case floorplan::BlockType::kCore:
          idle = 0.5;
          busy = 4.0;
          break;
        case floorplan::BlockType::kCache:
          idle = 0.3;
          busy = 1.5;
          break;
        case floorplan::BlockType::kCrossbar:
          idle = 0.3;
          busy = 2.0;
          break;
        case floorplan::BlockType::kMemController:
          idle = 0.3;
          busy = 1.5;
          break;
        case floorplan::BlockType::kFpu:
          idle = 0.1;
          busy = 2.0;
          break;
        case floorplan::BlockType::kIo:
          idle = 0.2;
          busy = 1.0;
          break;
      }
      p[b] = idle + activity_[b] * (busy - idle);
    }
    return p;
  }

 private:
  // Returns the mean core target for this step.
  double update_core_targets() {
    if (core_target_.size() != core_count_) {
      core_target_.assign(core_count_, 0.5);
    }
    double mean = 0.0;
    for (std::size_t c = 0; c < core_count_; ++c) {
      bool hot;
      switch (scenario_) {
        case 0:
          hot = true;  // full load
          break;
        case 1:
          hot = c < core_count_ / 2;  // half the cores
          break;
        case 2:
          hot = (c % 2) == 0;  // checkerboard
          break;
        case 3:
          hot = (c == 1 || c == 5);  // two hot spots
          break;
        default:
          // Migrating load: the hot pair rotates every 32 steps.
          hot = (c == (step_ / 32) % core_count_) ||
                (c == (step_ / 32 + core_count_ / 2) % core_count_);
          break;
      }
      double target = hot ? 0.9 : 0.1;
      // Frequent per-core phase changes ride on top of the scenario
      // pattern so the within-scenario covariance is not rank one.
      if (rng_->uniform() < 0.08) target = rng_->uniform();
      core_target_[c] = target;
      mean += target;
    }
    return core_count_ > 0 ? mean / static_cast<double>(core_count_) : 0.0;
  }

  const floorplan::Floorplan* plan_;
  std::size_t scenario_;
  numerics::Rng* rng_;
  numerics::Vector activity_;
  numerics::Vector core_target_;
  std::vector<std::size_t> core_index_;
  std::size_t core_count_ = 0;
  std::size_t step_ = 0;
};

SnapshotSet validate_snapshots(SnapshotSet snapshots,
                               const ExperimentConfig& config) {
  if (snapshots.count() != config.map_count() ||
      snapshots.cell_count() != config.cell_count()) {
    throw std::invalid_argument("Experiment: snapshot shape != config");
  }
  return snapshots;
}

}  // namespace

ExperimentConfig::ExperimentConfig() {
  grid_width = env_size("EIGENMAPS_GRID_WIDTH", grid_width);
  grid_height = env_size("EIGENMAPS_GRID_HEIGHT", grid_height);
  scenario_count = env_size("EIGENMAPS_SCENARIOS", scenario_count);
  steps_per_scenario =
      env_size("EIGENMAPS_STEPS_PER_SCENARIO", steps_per_scenario);
  training_stride = env_size("EIGENMAPS_TRAINING_STRIDE", training_stride);
  pca_max_order = env_size("EIGENMAPS_PCA_MAX_ORDER", pca_max_order);
  dct_max_order = env_size("EIGENMAPS_DCT_MAX_ORDER", dct_max_order);
  seed = env_size("EIGENMAPS_SEED", seed, /*allow_zero=*/true);
}

bool ExperimentConfig::operator==(const ExperimentConfig& other) const {
  return grid_width == other.grid_width && grid_height == other.grid_height &&
         scenario_count == other.scenario_count &&
         steps_per_scenario == other.steps_per_scenario && dt == other.dt &&
         training_stride == other.training_stride &&
         pca_max_order == other.pca_max_order &&
         dct_max_order == other.dct_max_order && seed == other.seed;
}

Experiment::Experiment(const ExperimentConfig& config, SnapshotSet snapshots,
                       numerics::Vector energy)
    : config_(config),
      plan_(floorplan::make_niagara_t1()),
      grid_(plan_, config.grid_width, config.grid_height),
      snapshots_(validate_snapshots(std::move(snapshots), config)),
      training_(snapshots_.subsample(config.training_stride)),
      centered_evaluation_(snapshots_.data()),
      energy_(std::move(energy)),
      eigenmaps_basis_(training_,
                       [&config] {
                         PcaOptions o;
                         o.max_order = config.pca_max_order;
                         return o;
                       }()),
      dct_basis_(config.grid_height, config.grid_width,
                 std::min(config.dct_max_order, config.cell_count())) {
  if (energy_.size() != config.cell_count()) {
    throw std::invalid_argument("Experiment: energy size != config");
  }
  numerics::subtract_row_mean(centered_evaluation_, training_.mean());
}

Experiment simulate_experiment(const ExperimentConfig& config) {
  const floorplan::Floorplan plan = floorplan::make_niagara_t1();
  const floorplan::ThermalGrid grid(plan, config.grid_width,
                                    config.grid_height);
  const thermal::RcModel model(grid);

  numerics::Matrix maps(config.map_count(), grid.cell_count());
  numerics::Vector energy(grid.cell_count(), 0.0);
  std::size_t row = 0;
  for (std::size_t s = 0; s < config.scenario_count; ++s) {
    numerics::Rng rng(config.seed + 1000 * s);
    ScenarioPower workload(plan, s, &rng);
    // Settle into the scenario before recording.
    for (int warm = 0; warm < 8; ++warm) workload.advance();
    numerics::Vector power = workload.block_power();
    numerics::Vector state = model.steady_state(power);
    for (std::size_t t = 0; t < config.steps_per_scenario; ++t) {
      workload.advance();
      power = workload.block_power();
      state = model.step(state, power, config.dt);
      maps.set_row(row, state);
      const numerics::Vector p = model.cell_power(power);
      for (std::size_t i = 0; i < energy.size(); ++i) energy[i] += p[i];
      ++row;
    }
  }
  const double inv = 1.0 / static_cast<double>(config.map_count());
  for (double& e : energy) e *= inv;
  return Experiment(config, SnapshotSet(std::move(maps)), std::move(energy));
}

}  // namespace eigenmaps::core
