#include "core/pca_basis.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numerics/blas.h"
#include "numerics/rng.h"
#include "numerics/symmetric_eigen.h"

namespace eigenmaps::core {

namespace {

// Centered training matrix X (T x N).
numerics::Matrix centered_maps(const SnapshotSet& training) {
  numerics::Matrix x = training.data();
  numerics::subtract_row_mean(x, training.mean());
  return x;
}

struct Spectrum {
  numerics::Matrix vectors;     // N x retained
  numerics::Vector eigenvalues; // full known spectrum, descending
  std::size_t iterations = 0;   // orthogonal-iteration sweeps (0 if exact)
};

// Exact PCA from the T x T Gram matrix G = X X^T: covariance eigenvalues are
// mu / T and basis vectors are X^T u / sqrt(mu).
Spectrum train_snapshot_gram(const numerics::Matrix& x,
                             const PcaOptions& options) {
  const std::size_t t = x.rows();
  const std::size_t n = x.cols();
  numerics::Matrix g(t, t);
  for (std::size_t i = 0; i < t; ++i) {
    const double* ri = x.row_data(i);
    for (std::size_t j = i; j < t; ++j) {
      const double* rj = x.row_data(j);
      double s = 0.0;
      for (std::size_t c = 0; c < n; ++c) s += ri[c] * rj[c];
      g(i, j) = s;
      g(j, i) = s;
    }
  }
  const numerics::SymmetricEigen eig = numerics::symmetric_eigen(g);

  const double inv_t = 1.0 / static_cast<double>(t);
  const double top = std::max(eig.eigenvalues[0], 0.0);
  Spectrum out;
  out.eigenvalues.reserve(t);
  std::size_t usable = 0;
  for (std::size_t j = 0; j < t; ++j) {
    const double mu = eig.eigenvalues[j];
    if (mu <= 0.0 || mu < options.rank_tolerance * top) break;
    out.eigenvalues.push_back(mu * inv_t);
    ++usable;
  }
  const std::size_t order = std::min(options.max_order, usable);
  out.vectors = numerics::Matrix(n, order);
  for (std::size_t j = 0; j < order; ++j) {
    const double inv_sqrt_mu = 1.0 / std::sqrt(eig.eigenvalues[j]);
    // v_j = X^T u_j / sqrt(mu_j)
    for (std::size_t i = 0; i < t; ++i) {
      const double w = eig.eigenvectors(i, j) * inv_sqrt_mu;
      if (w == 0.0) continue;
      const double* row = x.row_data(i);
      for (std::size_t c = 0; c < n; ++c) out.vectors(c, j) += w * row[c];
    }
  }
  return out;
}

// Exact PCA from the N x N covariance C = X^T X / T.
Spectrum train_dense_covariance(const numerics::Matrix& x,
                                const PcaOptions& options) {
  const std::size_t t = x.rows();
  const std::size_t n = x.cols();
  numerics::Matrix c = numerics::gram(x);
  const double inv_t = 1.0 / static_cast<double>(t);
  for (double& v : c.storage()) v *= inv_t;
  const numerics::SymmetricEigen eig = numerics::symmetric_eigen(c);

  const double top = std::max(eig.eigenvalues[0], 0.0);
  Spectrum out;
  std::size_t usable = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const double lambda = eig.eigenvalues[j];
    if (lambda <= 0.0 || lambda < options.rank_tolerance * top) break;
    out.eigenvalues.push_back(lambda);
    ++usable;
  }
  const std::size_t order = std::min(options.max_order, usable);
  out.vectors = numerics::Matrix(n, order);
  for (std::size_t j = 0; j < order; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      out.vectors(i, j) = eig.eigenvectors(i, j);
    }
  }
  return out;
}

// Matrix-free block orthogonal iteration: Q <- orth(X^T (X Q) / T).
Spectrum train_orthogonal_iteration(const numerics::Matrix& x,
                                    const PcaOptions& options) {
  const std::size_t t = x.rows();
  const std::size_t n = x.cols();
  const std::size_t block =
      std::min(options.max_order + 4, std::min(t, n));
  numerics::Rng rng(options.seed);
  numerics::Matrix q(n, block);
  for (double& v : q.storage()) v = rng.normal();
  if (options.warm_start != nullptr && options.warm_start->rows() == n) {
    // Seed the leading columns from the previous basis; the trailing
    // (random) columns keep the block exploring directions the old basis
    // missed. Orthonormalisation below blends both.
    const numerics::Matrix& warm = *options.warm_start;
    const std::size_t seeded = std::min(block, warm.cols());
    for (std::size_t c = 0; c < n; ++c) {
      const double* src = warm.row_data(c);
      double* dst = q.row_data(c);
      for (std::size_t j = 0; j < seeded; ++j) dst[j] = src[j];
    }
  }
  numerics::orthonormalize_columns(q);

  const double inv_t = 1.0 / static_cast<double>(t);
  numerics::Vector estimates(block, 0.0);
  std::size_t iterations = 0;
  for (std::size_t iter = 0; iter < options.iteration_limit; ++iter) {
    // Z = X^T (X Q) / T without forming the covariance.
    numerics::Matrix xq = numerics::matmul(x, q);        // T x block
    numerics::Matrix z(n, block);
    for (std::size_t i = 0; i < t; ++i) {
      const double* xrow = x.row_data(i);
      const double* brow = xq.row_data(i);
      for (std::size_t c = 0; c < n; ++c) {
        const double xv = xrow[c];
        if (xv == 0.0) continue;
        double* zrow = z.row_data(c);
        for (std::size_t j = 0; j < block; ++j) zrow[j] += xv * brow[j];
      }
    }
    for (double& v : z.storage()) v *= inv_t;

    // Rayleigh estimates before orthonormalisation: lambda_j ~ ||z_j||.
    numerics::Vector next(block, 0.0);
    for (std::size_t j = 0; j < block; ++j) {
      double s = 0.0;
      for (std::size_t c = 0; c < n; ++c) s += z(c, j) * z(c, j);
      next[j] = std::sqrt(s);
    }
    q = std::move(z);
    numerics::orthonormalize_columns(q);

    // Convergence is judged on the estimates that will be retained; the
    // extra exploratory columns chase near-degenerate tail eigenvalues
    // and would otherwise keep a converged block iterating forever.
    const std::size_t tracked = std::min(options.max_order, block);
    double drift = 0.0;
    for (std::size_t j = 0; j < tracked; ++j) {
      const double denom = std::max(next[j], 1e-300);
      drift = std::max(drift, std::fabs(next[j] - estimates[j]) / denom);
    }
    estimates = std::move(next);
    iterations = iter + 1;
    if (drift < options.iteration_tolerance) break;
  }

  // Final eigenvalues via the Rayleigh quotient lambda_j = ||X q_j||^2 / T,
  // then sort the block (orthogonal iteration usually orders it already).
  numerics::Matrix xq = numerics::matmul(x, q);
  std::vector<std::pair<double, std::size_t>> ranked(block);
  for (std::size_t j = 0; j < block; ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < t; ++i) s += xq(i, j) * xq(i, j);
    ranked[j] = {s * inv_t, j};
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });

  const double top = std::max(ranked[0].first, 0.0);
  std::size_t usable = 0;
  for (std::size_t j = 0; j < block; ++j) {
    if (ranked[j].first <= 0.0 ||
        ranked[j].first < options.rank_tolerance * top) {
      break;
    }
    ++usable;
  }
  const std::size_t order = std::min(options.max_order, usable);
  Spectrum out;
  out.vectors = numerics::Matrix(n, order);
  out.eigenvalues.resize(order);
  out.iterations = iterations;
  for (std::size_t j = 0; j < order; ++j) {
    out.eigenvalues[j] = ranked[j].first;
    for (std::size_t c = 0; c < n; ++c) {
      out.vectors(c, j) = q(c, ranked[j].second);
    }
  }
  return out;
}

}  // namespace

PcaBasis::PcaBasis(const SnapshotSet& training, const PcaOptions& options) {
  if (training.count() == 0 || training.cell_count() == 0) {
    throw std::invalid_argument("PcaBasis: empty training set");
  }
  const numerics::Matrix x = centered_maps(training);
  Spectrum s;
  switch (options.method) {
    case PcaMethod::kSnapshotGram:
      s = train_snapshot_gram(x, options);
      break;
    case PcaMethod::kDenseCovariance:
      s = train_dense_covariance(x, options);
      break;
    case PcaMethod::kOrthogonalIteration:
      s = train_orthogonal_iteration(x, options);
      break;
  }
  vectors_ = std::move(s.vectors);
  eigenvalues_ = std::move(s.eigenvalues);
  iterations_used_ = s.iterations;
  if (vectors_.cols() == 0) {
    throw std::invalid_argument("PcaBasis: training set has zero variance");
  }
}

std::size_t PcaBasis::order_for_energy_fraction(double tail_fraction) const {
  const double total = numerics::sum(eigenvalues_);
  if (total <= 0.0) return 0;
  double tail = total;
  for (std::size_t k = 0; k < eigenvalues_.size(); ++k) {
    if (tail / total <= tail_fraction) return k;
    tail -= eigenvalues_[k];
  }
  return eigenvalues_.size();
}

double PcaBasis::theoretical_approximation_mse(std::size_t k) const {
  double tail = 0.0;
  for (std::size_t j = k; j < eigenvalues_.size(); ++j) {
    tail += eigenvalues_[j];
  }
  return tail / static_cast<double>(cell_count());
}

}  // namespace eigenmaps::core
