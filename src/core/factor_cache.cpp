#include "core/factor_cache.h"

#include <algorithm>
#include <stdexcept>

#include "numerics/svd.h"

namespace eigenmaps::core {

// ---- SensorBitmask -----------------------------------------------------

SensorBitmask::SensorBitmask(std::size_t sensor_count, bool all_active)
    : count_(sensor_count),
      words_((sensor_count + 63) / 64,
             all_active ? ~std::uint64_t{0} : std::uint64_t{0}) {
  if (all_active && count_ % 64 != 0 && !words_.empty()) {
    words_.back() >>= 64 - count_ % 64;  // clear bits past the sensor count
  }
}

SensorBitmask SensorBitmask::except(std::size_t sensor_count,
                                    const std::vector<std::size_t>& dropped) {
  SensorBitmask mask(sensor_count);
  for (const std::size_t slot : dropped) mask.set(slot, false);
  return mask;
}

std::size_t SensorBitmask::active_count() const {
  std::size_t count = 0;
  for (std::uint64_t word : words_) {
    while (word != 0) {
      word &= word - 1;
      ++count;
    }
  }
  return count;
}

bool SensorBitmask::active(std::size_t slot) const {
  if (slot >= count_) {
    throw std::out_of_range("SensorBitmask: slot out of range");
  }
  return (words_[slot / 64] >> (slot % 64)) & 1u;
}

void SensorBitmask::set(std::size_t slot, bool alive) {
  if (slot >= count_) {
    throw std::out_of_range("SensorBitmask: slot out of range");
  }
  const std::uint64_t bit = std::uint64_t{1} << (slot % 64);
  if (alive) {
    words_[slot / 64] |= bit;
  } else {
    words_[slot / 64] &= ~bit;
  }
}

std::vector<std::size_t> SensorBitmask::active_slots() const {
  std::vector<std::size_t> slots;
  slots.reserve(count_);
  for (std::size_t s = 0; s < count_; ++s) {
    if ((words_[s / 64] >> (s % 64)) & 1u) slots.push_back(s);
  }
  return slots;
}

std::size_t SensorBitmask::hash() const {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  mix(count_);
  for (const std::uint64_t word : words_) mix(word);
  return static_cast<std::size_t>(h);
}

// ---- MaskedFactor ------------------------------------------------------

MaskedFactor::MaskedFactor(SensorBitmask mask, std::vector<std::size_t> active,
                           double condition, numerics::HouseholderQr qr)
    : mask_(std::move(mask)),
      active_(std::move(active)),
      condition_(condition),
      method_(Method::kRefactored),
      qr_(std::move(qr)) {}

MaskedFactor::MaskedFactor(SensorBitmask mask, std::vector<std::size_t> active,
                           double condition,
                           numerics::SeminormalSolver seminormal)
    : mask_(std::move(mask)),
      active_(std::move(active)),
      condition_(condition),
      method_(Method::kDowndated),
      seminormal_(std::move(seminormal)) {}

MaskedFactor::MaskedFactor(SensorBitmask mask, std::vector<std::size_t> active,
                           std::shared_ptr<const ReconstructionModel> model)
    : mask_(std::move(mask)),
      active_(std::move(active)),
      condition_(model->condition_number()),
      method_(Method::kFullFactor),
      full_model_(std::move(model)) {}

numerics::Matrix MaskedFactor::solve_batch(
    const numerics::Matrix& centered) const {
  if (full_model_) return full_model_->full_factor().solve_batch(centered);
  return qr_ ? qr_->solve_batch(centered) : seminormal_->solve_batch(centered);
}

// ---- FactorCache -------------------------------------------------------

FactorCache::FactorCache(std::shared_ptr<const ReconstructionModel> model,
                         FactorCacheOptions options)
    : model_(std::move(model)), options_([&options] {
        options.capacity = std::max<std::size_t>(options.capacity, 1);
        return options;
      }()) {
  if (!model_) {
    throw std::invalid_argument("FactorCache: null model");
  }
  full_r_ = model_->full_factor().r();
  // Borrows the model's own factor — bit-identical to the undegraded
  // path, no duplicate factorization.
  SensorBitmask all(model_->sensor_count());
  std::vector<std::size_t> slots = all.active_slots();
  full_factor_ = std::shared_ptr<const MaskedFactor>(
      new MaskedFactor(std::move(all), std::move(slots), model_));
}

std::shared_ptr<const MaskedFactor> FactorCache::build(
    const SensorBitmask& mask) const {
  const std::size_t m = model_->sensor_count();
  const std::size_t k = model_->order();
  std::vector<std::size_t> active = mask.active_slots();
  if (active.size() < k) {
    // Theorem 1: fewer survivors than basis components cannot determine a
    // unique estimate at this order, whatever the geometry.
    throw std::invalid_argument(
        "FactorCache: surviving sensors fewer than the model order");
  }
  const std::size_t dropped_count = m - active.size();
  const numerics::Matrix& sampled = model_->sampled_basis();

  numerics::Matrix surviving(active.size(), k);
  for (std::size_t i = 0; i < active.size(); ++i) {
    const double* src = sampled.row_data(active[i]);
    double* dst = surviving.row_data(i);
    for (std::size_t j = 0; j < k; ++j) dst[j] = src[j];
  }

  if (dropped_count > 0 && dropped_count <= options_.downdate_limit) {
    numerics::Matrix r = full_r_;
    bool alive = true;
    for (std::size_t s = 0; s < m && alive; ++s) {
      if (!mask.active(s)) {
        alive = numerics::downdate_r_row(r, sampled.row_data(s));
      }
    }
    if (alive) {
      // A chain of individually-healthy downdates can still degrade the
      // factor; recheck conditioning before trusting it. The limit here
      // is the CSNE accuracy bound, not the serving ceiling, and an
      // estimate past it is NOT a rejection — the refactor path below
      // re-judges with exact singular values.
      const double condition = numerics::triangular_condition_1(r);
      if (condition <= options_.downdate_condition_limit &&
          condition <= options_.condition_ceiling) {
        return std::shared_ptr<const MaskedFactor>(new MaskedFactor(
            mask, std::move(active), condition,
            numerics::SeminormalSolver(std::move(r), std::move(surviving))));
      }
    }
    // Downdate hit (near-)rank loss or suspect conditioning: fall through
    // and let the exact singular values of the surviving rows deliver the
    // verdict.
  }

  const numerics::Vector sv = numerics::singular_values(surviving);
  if (sv.empty() || sv.front() <= 0.0 ||
      sv.back() < options_.rank_tolerance * sv.front()) {
    throw std::invalid_argument(
        "FactorCache: surviving sensors rank deficient (Theorem 1)");
  }
  const double condition = sv.front() / sv.back();
  if (condition > options_.condition_ceiling) {
    throw std::invalid_argument(
        "FactorCache: mask conditioning past the ceiling");
  }
  return std::shared_ptr<const MaskedFactor>(
      new MaskedFactor(mask, std::move(active), condition,
                       numerics::HouseholderQr(std::move(surviving))));
}

std::shared_ptr<const MaskedFactor> FactorCache::factor(
    const SensorBitmask& mask) {
  return lookup_or_build(mask, /*count_hit=*/true);
}

void FactorCache::validate(const SensorBitmask& mask) {
  lookup_or_build(mask, /*count_hit=*/false);
}

std::shared_ptr<const MaskedFactor> FactorCache::lookup_or_build(
    const SensorBitmask& mask, bool count_hit) {
  SensorBitmask full;
  const SensorBitmask* key_ptr = &mask;
  if (mask.size() == 0) {  // empty = all sensors
    full = SensorBitmask(model_->sensor_count());
    key_ptr = &full;
  }
  const SensorBitmask& key = *key_ptr;
  if (key.size() != model_->sensor_count()) {
    throw std::invalid_argument("FactorCache: mask width != sensor count");
  }
  if (key.all_active()) {
    if (count_hit) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.hits;
    }
    return full_factor_;  // permanently resident, no LRU slot
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      if (count_hit) ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->second;
    }
    if (rejected_.count(key) != 0) {
      ++stats_.rejections;
      throw std::invalid_argument(
          "FactorCache: mask rejected (rank guard / condition ceiling)");
    }
    ++stats_.misses;
  }
  // Build outside the lock: the factors are small (k x k-ish) but a cold
  // mask must not stall hits on other masks, the undegraded path, or the
  // stats readers. Concurrent misses on the same mask may build twice;
  // the first insert wins below.
  std::shared_ptr<const MaskedFactor> built;
  try {
    built = build(key);
  } catch (const std::invalid_argument&) {
    // A genuine rejection (rank guard / ceiling): negatively cache it.
    // The attempt is a rejection, not a miss — hit rate should measure
    // the cache over servable masks, not the presence of bad ones.
    std::lock_guard<std::mutex> lock(mutex_);
    --stats_.misses;
    ++stats_.rejections;
    if (rejected_.size() >= 1024) rejected_.clear();
    rejected_.insert(key);
    throw;
  } catch (...) {
    // Transient failure (e.g. allocation): retryable, never poison the
    // mask.
    std::lock_guard<std::mutex> lock(mutex_);
    --stats_.misses;
    throw;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (built->method() == MaskedFactor::Method::kDowndated) {
    ++stats_.downdates;
  } else {
    ++stats_.refactors;
  }
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Raced another builder; keep the resident factor.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }
  lru_.emplace_front(key, built);
  index_[key] = lru_.begin();
  if (lru_.size() > options_.capacity) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  return built;
}

numerics::Matrix FactorCache::reconstruct_batch(
    const numerics::Matrix& readings, const SensorBitmask& mask) {
  if (readings.cols() != model_->sensor_count()) {
    throw std::invalid_argument(
        "FactorCache::reconstruct_batch: readings width != sensor count");
  }
  if (mask.size() == 0 || (mask.size() == model_->sensor_count() &&
                           mask.all_active())) {
    // Undegraded: the model's own path, bit for bit, no cache slot burned
    // — and counted apart from hits so the hit rate measures the cache.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.full_mask_batches;
    }
    return model_->reconstruct_batch(readings);
  }
  const std::shared_ptr<const MaskedFactor> f = factor(mask);
  const std::vector<std::size_t>& slots = f->active_slots();
  const numerics::Vector& mean = model_->mean_at_sensors();
  numerics::Matrix centered(readings.rows(), slots.size());
  for (std::size_t row = 0; row < readings.rows(); ++row) {
    const double* src = readings.row_data(row);
    double* dst = centered.row_data(row);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      dst[i] = src[slots[i]] - mean[slots[i]];
    }
  }
  return model_->expand(f->solve_batch(centered));
}

FactorCacheStats FactorCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t FactorCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

}  // namespace eigenmaps::core
