#include "core/factor_cache.h"

#include <algorithm>
#include <stdexcept>

#include "numerics/svd.h"
#include "obs/trace.h"

namespace eigenmaps::core {

// ---- SensorBitmask -----------------------------------------------------

SensorBitmask::SensorBitmask(std::size_t sensor_count, bool all_active)
    : count_(sensor_count) {
  const std::size_t words = word_count();
  if (words > kInlineWords) {
    overflow_.assign(words, 0);
  }
  if (all_active) {
    std::uint64_t* w = this->words();
    for (std::size_t i = 0; i < words; ++i) w[i] = ~std::uint64_t{0};
    if (count_ % 64 != 0 && words != 0) {
      w[words - 1] >>= 64 - count_ % 64;  // clear bits past the sensor count
    }
  }
}

SensorBitmask SensorBitmask::except(std::size_t sensor_count,
                                    const std::vector<std::size_t>& dropped) {
  SensorBitmask mask(sensor_count);
  for (const std::size_t slot : dropped) mask.set(slot, false);
  return mask;
}

std::size_t SensorBitmask::active_count() const {
  const std::uint64_t* w = words();
  std::size_t count = 0;
  for (std::size_t i = 0; i < word_count(); ++i) {
    std::uint64_t word = w[i];
    while (word != 0) {
      word &= word - 1;
      ++count;
    }
  }
  return count;
}

bool SensorBitmask::active(std::size_t slot) const {
  if (slot >= count_) {
    throw std::out_of_range("SensorBitmask: slot out of range");
  }
  return (words()[slot / 64] >> (slot % 64)) & 1u;
}

void SensorBitmask::set(std::size_t slot, bool alive) {
  if (slot >= count_) {
    throw std::out_of_range("SensorBitmask: slot out of range");
  }
  const std::uint64_t bit = std::uint64_t{1} << (slot % 64);
  if (alive) {
    words()[slot / 64] |= bit;
  } else {
    words()[slot / 64] &= ~bit;
  }
}

std::vector<std::size_t> SensorBitmask::active_slots() const {
  const std::uint64_t* w = words();
  std::vector<std::size_t> slots;
  slots.reserve(count_);
  for (std::size_t s = 0; s < count_; ++s) {
    if ((w[s / 64] >> (s % 64)) & 1u) slots.push_back(s);
  }
  return slots;
}

bool SensorBitmask::operator==(const SensorBitmask& other) const {
  if (count_ != other.count_) return false;
  const std::uint64_t* a = words();
  const std::uint64_t* b = other.words();
  for (std::size_t i = 0; i < word_count(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

std::size_t SensorBitmask::hash() const {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  mix(count_);
  const std::uint64_t* w = words();
  for (std::size_t i = 0; i < word_count(); ++i) mix(w[i]);
  return static_cast<std::size_t>(h);
}

// ---- MaskedFactor ------------------------------------------------------

MaskedFactor::MaskedFactor(SensorBitmask mask, std::vector<std::size_t> active,
                           double condition, numerics::HouseholderQr qr)
    : mask_(std::move(mask)),
      active_(std::move(active)),
      condition_(condition),
      method_(Method::kRefactored),
      qr_(std::move(qr)) {}

MaskedFactor::MaskedFactor(SensorBitmask mask, std::vector<std::size_t> active,
                           double condition,
                           numerics::SeminormalSolver seminormal)
    : mask_(std::move(mask)),
      active_(std::move(active)),
      condition_(condition),
      method_(Method::kDowndated),
      seminormal_(std::move(seminormal)) {}

MaskedFactor::MaskedFactor(SensorBitmask mask, std::vector<std::size_t> active,
                           std::shared_ptr<const ReconstructionModel> model)
    : mask_(std::move(mask)),
      active_(std::move(active)),
      condition_(model->condition_number()),
      method_(Method::kFullFactor),
      full_model_(std::move(model)) {}

std::size_t MaskedFactor::solve_scratch_doubles() const {
  if (full_model_) return full_model_->full_factor().scratch_doubles();
  return qr_ ? qr_->scratch_doubles() : seminormal_->scratch_doubles();
}

void MaskedFactor::solve_batch_into(numerics::ConstMatrixView centered,
                                    numerics::MatrixView alpha,
                                    numerics::VectorView scratch) const {
  if (full_model_) {
    full_model_->full_factor().solve_batch_into(centered, alpha, scratch);
  } else if (qr_) {
    qr_->solve_batch_into(centered, alpha, scratch);
  } else {
    seminormal_->solve_batch_into(centered, alpha, scratch);
  }
}

numerics::Matrix MaskedFactor::solve_batch(
    numerics::ConstMatrixView centered) const {
  if (full_model_) return full_model_->full_factor().solve_batch(centered);
  return qr_ ? qr_->solve_batch(centered) : seminormal_->solve_batch(centered);
}

std::size_t MaskedFactor::resident_bytes() const {
  std::size_t doubles = 0;
  if (qr_) {
    // Packed factor + tau + diag.
    doubles = qr_->rows() * qr_->cols() + 2 * qr_->cols();
  } else if (seminormal_) {
    // n x n triangular R + the m x n surviving rows.
    doubles = seminormal_->cols() * seminormal_->cols() +
              seminormal_->rows() * seminormal_->cols();
  }
  return doubles * sizeof(double) + active_.size() * sizeof(std::size_t);
}

// ---- FactorCache -------------------------------------------------------

FactorCache::FactorCache(std::shared_ptr<const ReconstructionModel> model,
                         FactorCacheOptions options)
    : model_(std::move(model)), options_([&options] {
        options.capacity = std::max<std::size_t>(options.capacity, 1);
        return options;
      }()) {
  if (!model_) {
    throw std::invalid_argument("FactorCache: null model");
  }
  full_r_ = model_->full_factor().r();
  // Borrows the model's own factor — bit-identical to the undegraded
  // path, no duplicate factorization.
  SensorBitmask all(model_->sensor_count());
  std::vector<std::size_t> slots = all.active_slots();
  full_factor_ = std::shared_ptr<const MaskedFactor>(
      new MaskedFactor(std::move(all), std::move(slots), model_));
}

std::shared_ptr<const MaskedFactor> FactorCache::build(
    const SensorBitmask& mask) const {
  const std::size_t m = model_->sensor_count();
  const std::size_t k = model_->order();
  std::vector<std::size_t> active = mask.active_slots();
  if (active.size() < k) {
    // Theorem 1: fewer survivors than basis components cannot determine a
    // unique estimate at this order, whatever the geometry.
    throw std::invalid_argument(
        "FactorCache: surviving sensors fewer than the model order");
  }
  const std::size_t dropped_count = m - active.size();
  const numerics::Matrix& sampled = model_->sampled_basis();

  numerics::Matrix surviving(active.size(), k);
  for (std::size_t i = 0; i < active.size(); ++i) {
    const double* src = sampled.row_data(active[i]);
    double* dst = surviving.row_data(i);
    for (std::size_t j = 0; j < k; ++j) dst[j] = src[j];
  }

  if (dropped_count > 0 && dropped_count <= options_.downdate_limit) {
    numerics::Matrix r = full_r_;
    numerics::Vector scratch(3 * k);
    bool alive = true;
    for (std::size_t s = 0; s < m && alive; ++s) {
      if (!mask.active(s)) {
        alive = numerics::downdate_r_row(r.view(), sampled.row_data(s),
                                         scratch);
      }
    }
    if (alive) {
      // A chain of individually-healthy downdates can still degrade the
      // factor; recheck conditioning before trusting it. The limit here
      // is the CSNE accuracy bound, not the serving ceiling, and an
      // estimate past it is NOT a rejection — the refactor path below
      // re-judges with exact singular values.
      const double condition = numerics::triangular_condition_1(r);
      if (condition <= options_.downdate_condition_limit &&
          condition <= options_.condition_ceiling) {
        return std::shared_ptr<const MaskedFactor>(new MaskedFactor(
            mask, std::move(active), condition,
            numerics::SeminormalSolver(std::move(r), std::move(surviving))));
      }
    }
    // Downdate hit (near-)rank loss or suspect conditioning: fall through
    // and let the exact singular values of the surviving rows deliver the
    // verdict.
  }

  const numerics::Vector sv = numerics::singular_values(surviving);
  if (sv.empty() || sv.front() <= 0.0 ||
      sv.back() < options_.rank_tolerance * sv.front()) {
    throw std::invalid_argument(
        "FactorCache: surviving sensors rank deficient (Theorem 1)");
  }
  const double condition = sv.front() / sv.back();
  if (condition > options_.condition_ceiling) {
    throw std::invalid_argument(
        "FactorCache: mask conditioning past the ceiling");
  }
  return std::shared_ptr<const MaskedFactor>(
      new MaskedFactor(mask, std::move(active), condition,
                       numerics::HouseholderQr(std::move(surviving))));
}

std::shared_ptr<const MaskedFactor> FactorCache::factor(
    const SensorBitmask& mask) {
  return lookup_or_build(mask, /*count_hit=*/true);
}

void FactorCache::validate(const SensorBitmask& mask) {
  lookup_or_build(mask, /*count_hit=*/false);
}

std::shared_ptr<const MaskedFactor> FactorCache::lookup_or_build(
    const SensorBitmask& mask, bool count_hit) {
  SensorBitmask full;
  const SensorBitmask* key_ptr = &mask;
  if (mask.size() == 0) {  // empty = all sensors
    full = SensorBitmask(model_->sensor_count());
    key_ptr = &full;
  }
  const SensorBitmask& key = *key_ptr;
  if (key.size() != model_->sensor_count()) {
    throw std::invalid_argument("FactorCache: mask width != sensor count");
  }
  if (key.all_active()) {
    if (count_hit) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.hits;
    }
    return full_factor_;  // permanently resident, no LRU slot
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      if (count_hit) ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->second;
    }
    if (rejected_.count(key) != 0) {
      ++stats_.rejections;
      throw std::invalid_argument(
          "FactorCache: mask rejected (rank guard / condition ceiling)");
    }
    ++stats_.misses;
  }
  // Build outside the lock: the factors are small (k x k-ish) but a cold
  // mask must not stall hits on other masks, the undegraded path, or the
  // stats readers. Concurrent misses on the same mask may build twice;
  // the first insert wins below.
  std::shared_ptr<const MaskedFactor> built;
  try {
    built = build(key);
  } catch (const std::invalid_argument&) {
    // A genuine rejection (rank guard / ceiling): negatively cache it.
    // The attempt is a rejection, not a miss — hit rate should measure
    // the cache over servable masks, not the presence of bad ones.
    std::lock_guard<std::mutex> lock(mutex_);
    --stats_.misses;
    ++stats_.rejections;
    if (rejected_.size() >= 1024) rejected_.clear();
    rejected_.insert(key);
    throw;
  } catch (...) {
    // Transient failure (e.g. allocation): retryable, never poison the
    // mask.
    std::lock_guard<std::mutex> lock(mutex_);
    --stats_.misses;
    throw;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (built->method() == MaskedFactor::Method::kDowndated) {
    ++stats_.downdates;
  } else {
    ++stats_.refactors;
  }
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Raced another builder; keep the resident factor.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }
  lru_.emplace_front(key, built);
  index_[key] = lru_.begin();
  if (lru_.size() > options_.capacity) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  return built;
}

void FactorCache::reconstruct_batch_into(numerics::ConstMatrixView readings,
                                         const SensorBitmask& mask,
                                         numerics::MatrixView out,
                                         Workspace& workspace) {
  if (readings.cols() != model_->sensor_count()) {
    throw std::invalid_argument(
        "FactorCache::reconstruct_batch: readings width != sensor count");
  }
  if (mask.size() == 0 || (mask.size() == model_->sensor_count() &&
                           mask.all_active())) {
    // Undegraded: the model's own path, bit for bit, no cache slot burned
    // — and counted apart from hits so the hit rate measures the cache.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.full_mask_batches;
    }
    model_->reconstruct_batch_into(readings, out, workspace);
    return;
  }
  const std::size_t frames = readings.rows();
  if (out.rows() != frames || out.cols() != model_->cell_count()) {
    throw std::invalid_argument(
        "FactorCache::reconstruct_batch: output shape mismatch");
  }
  const std::shared_ptr<const MaskedFactor> f = factor(mask);
  const std::vector<std::size_t>& slots = f->active_slots();
  const numerics::Vector& mean = model_->mean_at_sensors();
  const std::size_t k = model_->order();
  // Same layout as the undegraded path, so the model's sizing bound
  // (workspace_doubles) covers every mask and a warm workspace never
  // grows on a mask change.
  workspace.begin(Workspace::padded(frames * slots.size()) +
                  Workspace::padded(frames * k) +
                  Workspace::padded(f->solve_scratch_doubles()));
  numerics::MatrixView centered =
      workspace.alloc_matrix(frames, slots.size());
  numerics::MatrixView alpha = workspace.alloc_matrix(frames, k);
  numerics::VectorView scratch =
      workspace.alloc_vector(f->solve_scratch_doubles());
  for (std::size_t row = 0; row < frames; ++row) {
    const double* src = readings.row_data(row);
    double* dst = centered.row_data(row);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      dst[i] = src[slots[i]] - mean[slots[i]];
    }
  }
  {
    // Stage attribution for the masked path (the full-mask path is timed
    // inside the model's own batch solve); expansion is timed by
    // expand_into itself.
    obs::ScopedStageSpan span(obs::Stage::kSolve);
    f->solve_batch_into(centered, alpha, scratch);
  }
  model_->expand_into(alpha, out);
}

numerics::Matrix FactorCache::reconstruct_batch(
    numerics::ConstMatrixView readings, const SensorBitmask& mask) {
  numerics::Matrix out(readings.rows(), model_->cell_count());
  reconstruct_batch_into(readings, mask, out.view(), wrapper_workspace());
  return out;
}

FactorCacheStats FactorCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t FactorCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

std::size_t FactorCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t bytes = full_r_.storage().size() * sizeof(double);
  if (full_factor_) bytes += full_factor_->resident_bytes();
  for (const LruEntry& entry : lru_) {
    bytes += entry.second->resident_bytes();
  }
  return bytes;
}

}  // namespace eigenmaps::core
