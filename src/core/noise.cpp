#include "core/noise.h"

#include <cmath>
#include <stdexcept>

namespace eigenmaps::core {

NoiseModel::NoiseModel(double snr_db, double signal_energy_per_cell,
                       std::uint64_t seed)
    : sigma_(0.0), rng_(seed) {
  if (signal_energy_per_cell < 0.0) {
    throw std::invalid_argument("NoiseModel: negative signal energy");
  }
  const double snr_linear = std::pow(10.0, snr_db / 10.0);
  sigma_ = std::sqrt(signal_energy_per_cell / snr_linear);
}

void NoiseModel::perturb(numerics::Vector& readings) {
  if (sigma_ == 0.0) return;
  for (double& r : readings) r += sigma_ * rng_.normal();
}

}  // namespace eigenmaps::core
