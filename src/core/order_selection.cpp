#include "core/order_selection.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/reconstructor.h"

namespace eigenmaps::core {

OrderSelection select_order(const Basis& basis, const SensorLocations& sensors,
                            const numerics::Vector& mean_map,
                            const numerics::Matrix& maps, std::size_t k_max,
                            const OrderSelectionOptions& options) {
  if (maps.rows() == 0) {
    throw std::invalid_argument("select_order: no validation maps");
  }
  std::size_t stride = options.validation_stride;
  if (stride == 0) stride = std::max<std::size_t>(1, maps.rows() / 128);

  numerics::Matrix validation((maps.rows() + stride - 1) / stride,
                              maps.cols());
  for (std::size_t i = 0; i < validation.rows(); ++i) {
    const double* src = maps.row_data(i * stride);
    double* dst = validation.row_data(i);
    for (std::size_t j = 0; j < maps.cols(); ++j) dst[j] = src[j];
  }

  const bool noisy = std::isfinite(options.snr_db);
  const std::size_t top =
      std::min({k_max, sensors.size(), basis.max_order()});

  // Resolve the expansion backend once, outside the feasibility loop: a
  // malformed EIGENMAPS_EXPANSION_BACKEND/… throws here naming the
  // variable instead of being swallowed as "rank deficient at k".
  const ExpansionOptions expansion = default_expansion_options();

  OrderSelection best;
  bool found = false;
  for (std::size_t k = 1; k <= top; ++k) {
    double mse = 0.0;
    try {
      const Reconstructor rec(basis, k, sensors, mean_map, expansion);
      if (noisy) {
        // Same seed for every k: candidates face identical noise draws.
        NoiseModel noise(options.snr_db, options.signal_energy_per_cell,
                         options.noise_seed);
        mse = evaluate_reconstruction(rec, validation, &noise).mse;
      } else {
        mse = evaluate_reconstruction(rec, validation).mse;
      }
    } catch (const std::invalid_argument&) {
      continue;  // rank deficient at this order
    }
    if (!found || mse < best.validation_mse) {
      best.k = k;
      best.validation_mse = mse;
      found = true;
    }
  }
  if (!found) {
    throw std::runtime_error(
        "select_order: no feasible estimation order for this placement");
  }
  return best;
}

}  // namespace eigenmaps::core
