#include "core/model.h"

#include <stdexcept>

#include "numerics/blas.h"
#include "numerics/svd.h"

namespace eigenmaps::core {

namespace {

constexpr double kRankTolerance = 1e-8;

numerics::Matrix sampled_basis_rows(const Basis& basis, std::size_t k,
                                    const SensorLocations& sensors) {
  if (k == 0 || k > basis.max_order()) {
    throw std::invalid_argument("ReconstructionModel: order out of range");
  }
  if (sensors.empty() || k > sensors.size()) {
    throw std::invalid_argument(
        "ReconstructionModel: order exceeds the sensor count");
  }
  const numerics::Matrix& v = basis.vectors();
  numerics::Matrix sampled(sensors.size(), k);
  for (std::size_t s = 0; s < sensors.size(); ++s) {
    if (sensors[s] >= basis.cell_count()) {
      throw std::invalid_argument("ReconstructionModel: sensor out of range");
    }
    const double* row = v.row_data(sensors[s]);
    for (std::size_t j = 0; j < k; ++j) sampled(s, j) = row[j];
  }
  return sampled;
}

}  // namespace

ReconstructionModel::SampledFactor ReconstructionModel::factor_sampled(
    const Basis& basis, std::size_t k, const SensorLocations& sensors) {
  numerics::Matrix sampled = sampled_basis_rows(basis, k, sensors);
  const numerics::Vector sv = numerics::singular_values(sampled);
  if (sv.empty() || sv.front() <= 0.0 ||
      sv.back() < kRankTolerance * sv.front()) {
    // Theorem 1: rank(Psi~_K) = K is required for a unique least-squares
    // estimate; the caller retries with a smaller order.
    throw std::invalid_argument(
        "ReconstructionModel: sampled basis rank deficient");
  }
  numerics::HouseholderQr solver(sampled);  // copy: Psi~ rows feed downdates
  return {std::move(sampled), std::move(solver), sv.front() / sv.back()};
}

ReconstructionModel::ReconstructionModel(const Basis& basis, std::size_t k,
                                         SensorLocations sensors,
                                         numerics::Vector mean_map)
    : k_(k),
      sensors_(std::move(sensors)),
      mean_map_(std::move(mean_map)),
      factor_(factor_sampled(basis, k, sensors_)) {
  if (mean_map_.size() != basis.cell_count()) {
    throw std::invalid_argument("ReconstructionModel: mean map size mismatch");
  }

  mean_at_sensors_.resize(sensors_.size());
  for (std::size_t s = 0; s < sensors_.size(); ++s) {
    mean_at_sensors_[s] = mean_map_[sensors_[s]];
  }
  subspace_ = numerics::Matrix(basis.cell_count(), k);
  subspace_t_ = numerics::Matrix(k, basis.cell_count());
  const numerics::Matrix& v = basis.vectors();
  for (std::size_t i = 0; i < basis.cell_count(); ++i) {
    const double* row = v.row_data(i);
    double* dst = subspace_.row_data(i);
    for (std::size_t j = 0; j < k; ++j) {
      dst[j] = row[j];
      subspace_t_(j, i) = row[j];
    }
  }
}

numerics::Vector ReconstructionModel::sample(
    const numerics::Vector& map) const {
  if (map.size() != mean_map_.size()) {
    throw std::invalid_argument(
        "ReconstructionModel::sample: map size mismatch");
  }
  numerics::Vector readings(sensors_.size());
  for (std::size_t s = 0; s < sensors_.size(); ++s) {
    readings[s] = map[sensors_[s]];
  }
  return readings;
}

numerics::Vector ReconstructionModel::reconstruct(
    const numerics::Vector& readings) const {
  if (readings.size() != sensors_.size()) {
    throw std::invalid_argument(
        "ReconstructionModel::reconstruct: readings size mismatch");
  }
  numerics::Vector centered(readings.size());
  for (std::size_t s = 0; s < readings.size(); ++s) {
    centered[s] = readings[s] - mean_at_sensors_[s];
  }
  const numerics::Vector alpha = factor_.solver.solve(centered);
  numerics::Vector map(mean_map_);
  for (std::size_t i = 0; i < map.size(); ++i) {
    const double* row = subspace_.row_data(i);
    double s = 0.0;
    for (std::size_t j = 0; j < k_; ++j) s += row[j] * alpha[j];
    map[i] += s;
  }
  return map;
}

numerics::Matrix ReconstructionModel::reconstruct_batch(
    const numerics::Matrix& readings) const {
  if (readings.cols() != sensors_.size()) {
    throw std::invalid_argument(
        "ReconstructionModel::reconstruct_batch: readings size mismatch");
  }
  const std::size_t frames = readings.rows();
  numerics::Matrix centered(frames, readings.cols());
  for (std::size_t f = 0; f < frames; ++f) {
    const double* src = readings.row_data(f);
    double* dst = centered.row_data(f);
    for (std::size_t s = 0; s < readings.cols(); ++s) {
      dst[s] = src[s] - mean_at_sensors_[s];
    }
  }
  // One multi-RHS solve against the cached QR factor, then one blocked
  // GEMM expands all coefficient rows through the subspace at once.
  return expand(factor_.solver.solve_batch(centered));
}

numerics::Matrix ReconstructionModel::expand(
    const numerics::Matrix& alpha) const {
  if (alpha.cols() != k_) {
    throw std::invalid_argument(
        "ReconstructionModel::expand: coefficient width mismatch");
  }
  // The mean map is seeded inside the kernel so the (large) output is
  // streamed exactly once.
  return numerics::matmul_bias(alpha, subspace_t_, mean_map_);
}

}  // namespace eigenmaps::core
