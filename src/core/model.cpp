#include "core/model.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "numerics/blas.h"
#include "numerics/gemm_f32.h"
#include "numerics/spmm.h"
#include "obs/trace.h"
#include "numerics/svd.h"
#include "support/env.h"

namespace eigenmaps::core {

namespace {

constexpr double kRankTolerance = 1e-8;

numerics::Matrix sampled_basis_rows(const Basis& basis, std::size_t k,
                                    const SensorLocations& sensors) {
  if (k == 0 || k > basis.max_order()) {
    throw std::invalid_argument("ReconstructionModel: order out of range");
  }
  if (sensors.empty() || k > sensors.size()) {
    throw std::invalid_argument(
        "ReconstructionModel: order exceeds the sensor count");
  }
  const numerics::Matrix& v = basis.vectors();
  numerics::Matrix sampled(sensors.size(), k);
  for (std::size_t s = 0; s < sensors.size(); ++s) {
    if (sensors[s] >= basis.cell_count()) {
      throw std::invalid_argument("ReconstructionModel: sensor out of range");
    }
    const numerics::ConstVectorView row = v.row_view(sensors[s]);
    for (std::size_t j = 0; j < k; ++j) sampled(s, j) = row[j];
  }
  return sampled;
}

/// Deterministic coefficient probe for the fp32 error measurement: a fixed
/// LCG fills an 8 x k batch with values in [-1, 1], both operators expand
/// it, and the error is max |fp32 - fp64| / max |fp64|. No wall clock, no
/// global RNG — the same model bytes always measure the same error.
double measure_fp32_error(numerics::ConstMatrixView subspace_t,
                          const numerics::Vector& mean,
                          const numerics::ConstF32MatrixView& f32_op,
                          const float* f32_bias) {
  constexpr std::size_t kProbeFrames = 8;
  const std::size_t k = subspace_t.rows();
  const std::size_t n = subspace_t.cols();
  numerics::Matrix alpha(kProbeFrames, k);
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  for (std::size_t f = 0; f < kProbeFrames; ++f) {
    for (std::size_t j = 0; j < k; ++j) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      const double unit =
          static_cast<double>(state >> 11) / 9007199254740992.0;  // [0, 1)
      alpha(f, j) = 2.0 * unit - 1.0;
    }
  }
  numerics::Matrix ref(kProbeFrames, n);
  numerics::Matrix got(kProbeFrames, n);
  numerics::matmul_bias_into(alpha, subspace_t, mean, ref.view());
  numerics::matmul_bias_f32_into(alpha, f32_op, f32_bias, got.view());
  double max_diff = 0.0;
  double max_ref = 0.0;
  for (std::size_t f = 0; f < kProbeFrames; ++f) {
    const double* r = ref.row_data(f);
    const double* g = got.row_data(f);
    for (std::size_t j = 0; j < n; ++j) {
      max_diff = std::max(max_diff, std::fabs(g[j] - r[j]));
      max_ref = std::max(max_ref, std::fabs(r[j]));
    }
  }
  return max_ref > 0.0 ? max_diff / max_ref : max_diff;
}

}  // namespace

const char* expansion_backend_name(ExpansionBackend backend) {
  switch (backend) {
    case ExpansionBackend::kDense64:
      return "dense64";
    case ExpansionBackend::kSparse64:
      return "sparse64";
    case ExpansionBackend::kFp32:
      return "fp32";
  }
  return "unknown";
}

ExpansionOptions default_expansion_options() {
  ExpansionOptions opts;
  if (const char* name = std::getenv("EIGENMAPS_EXPANSION_BACKEND");
      name != nullptr && *name != '\0') {
    const std::string value(name);
    if (value == "dense64") {
      opts.backend = ExpansionBackend::kDense64;
    } else if (value == "sparse64") {
      opts.backend = ExpansionBackend::kSparse64;
    } else if (value == "fp32") {
      opts.backend = ExpansionBackend::kFp32;
    } else {
      throw std::invalid_argument(
          "EIGENMAPS_EXPANSION_BACKEND: unknown backend \"" + value +
          "\" (expected dense64, sparse64 or fp32)");
    }
  }
  opts.sparse_threshold =
      support::env_double_or("EIGENMAPS_SPARSE_THRESHOLD", 0.0, 0.0, 1.0);
  opts.fp32_error_budget = support::env_double_or(
      "EIGENMAPS_FP32_ERROR_BUDGET", opts.fp32_error_budget, 0.0, 1.0);
  return opts;
}

ReconstructionModel::SampledFactor ReconstructionModel::factor_sampled(
    const Basis& basis, std::size_t k, const SensorLocations& sensors) {
  numerics::Matrix sampled = sampled_basis_rows(basis, k, sensors);
  const numerics::Vector sv = numerics::singular_values(sampled);
  if (sv.empty() || sv.front() <= 0.0 ||
      sv.back() < kRankTolerance * sv.front()) {
    // Theorem 1: rank(Psi~_K) = K is required for a unique least-squares
    // estimate; the caller retries with a smaller order.
    throw std::invalid_argument(
        "ReconstructionModel: sampled basis rank deficient");
  }
  numerics::HouseholderQr solver(sampled);  // copy: Psi~ rows feed downdates
  return {std::move(sampled), std::move(solver), sv.front() / sv.back()};
}

ReconstructionModel::ReconstructionModel(const Basis& basis, std::size_t k,
                                         SensorLocations sensors,
                                         numerics::Vector mean_map)
    : ReconstructionModel(basis, k, std::move(sensors), std::move(mean_map),
                          ExpansionOptions{}) {}

ReconstructionModel::ReconstructionModel(const Basis& basis, std::size_t k,
                                         SensorLocations sensors,
                                         numerics::Vector mean_map,
                                         const ExpansionOptions& expansion)
    : k_(k),
      sensors_(std::move(sensors)),
      mean_map_(std::move(mean_map)),
      expansion_(expansion),
      factor_(factor_sampled(basis, k, sensors_)) {
  if (mean_map_.size() != basis.cell_count()) {
    throw std::invalid_argument("ReconstructionModel: mean map size mismatch");
  }

  mean_at_sensors_.resize(sensors_.size());
  for (std::size_t s = 0; s < sensors_.size(); ++s) {
    mean_at_sensors_[s] = mean_map_[sensors_[s]];
  }
  const std::size_t n = basis.cell_count();
  subspace_ = numerics::Matrix(n, k);
  subspace_t_ = numerics::Matrix(k, n);
  const numerics::Matrix& v = basis.vectors();
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = v.row_data(i);
    double* dst = subspace_.row_data(i);
    for (std::size_t j = 0; j < k; ++j) {
      dst[j] = row[j];
      subspace_t_(j, i) = row[j];
    }
  }

  // Non-dense backends build their operator from the fp64 transpose, then
  // release it — subspace_ (the retrainer's warm start and the single-map
  // golden path's operand) stays resident on every backend.
  switch (expansion_.backend) {
    case ExpansionBackend::kDense64:
      break;
    case ExpansionBackend::kSparse64:
      sparse_operator_ =
          sparse::BlockedCsr(subspace_t_.view(), expansion_.sparse_threshold);
      subspace_t_ = numerics::Matrix();
      break;
    case ExpansionBackend::kFp32: {
      f32_operator_.resize(k * n);
      for (std::size_t j = 0; j < k; ++j) {
        const double* src = subspace_t_.row_data(j);
        float* dst = f32_operator_.data() + j * n;
        for (std::size_t i = 0; i < n; ++i) {
          dst[i] = static_cast<float>(src[i]);
        }
      }
      f32_bias_.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        f32_bias_[i] = static_cast<float>(mean_map_[i]);
      }
      fp32_measured_error_ = measure_fp32_error(
          subspace_t_.view(), mean_map_,
          numerics::ConstF32MatrixView{f32_operator_.data(), k, n, n},
          f32_bias_.data());
      subspace_t_ = numerics::Matrix();
      break;
    }
  }
}

std::size_t ReconstructionModel::workspace_doubles(std::size_t frames) const {
  const std::size_t m = sensors_.size();
  // Centered readings + coefficients + solver scratch. The scratch term
  // (m + k) covers the full-sensor QR (m) and every masked solver a
  // FactorCache can build on this model (QR of fewer rows, or the
  // seminormal pair active + k <= m + k).
  return Workspace::padded(frames * m) + Workspace::padded(frames * k_) +
         Workspace::padded(m + k_);
}

void ReconstructionModel::sample_into(numerics::ConstVectorView map,
                                      numerics::VectorView readings) const {
  if (map.size() != mean_map_.size()) {
    throw std::invalid_argument(
        "ReconstructionModel::sample: map size mismatch");
  }
  if (readings.size() != sensors_.size()) {
    throw std::invalid_argument(
        "ReconstructionModel::sample: readings size mismatch");
  }
  for (std::size_t s = 0; s < sensors_.size(); ++s) {
    readings[s] = map[sensors_[s]];
  }
}

numerics::Vector ReconstructionModel::sample(
    numerics::ConstVectorView map) const {
  numerics::Vector readings(sensors_.size());
  sample_into(map, readings);
  return readings;
}

void ReconstructionModel::reconstruct_into(numerics::ConstVectorView readings,
                                           numerics::VectorView out,
                                           Workspace& workspace) const {
  if (readings.size() != sensors_.size()) {
    throw std::invalid_argument(
        "ReconstructionModel::reconstruct: readings size mismatch");
  }
  if (out.size() != mean_map_.size()) {
    throw std::invalid_argument(
        "ReconstructionModel::reconstruct: output size mismatch");
  }
  const std::size_t m = sensors_.size();
  workspace.begin(workspace_doubles(1));
  numerics::VectorView centered = workspace.alloc_vector(m);
  numerics::VectorView alpha = workspace.alloc_vector(k_);
  numerics::VectorView scratch = workspace.alloc_vector(m);
  for (std::size_t s = 0; s < m; ++s) {
    centered[s] = readings[s] - mean_at_sensors_[s];
  }
  factor_.solver.solve_into(centered, alpha, scratch);
  if (expansion_.backend == ExpansionBackend::kDense64) {
    // Per-cell dot products rather than the blocked GEMM: a single map is
    // far below the kernel's threading threshold, and this accumulation
    // order is the historical (golden) one.
    for (std::size_t i = 0; i < out.size(); ++i) {
      const double* row = subspace_.row_data(i);
      double s = 0.0;
      for (std::size_t j = 0; j < k_; ++j) s += row[j] * alpha[j];
      out[i] = mean_map_[i] + s;
    }
  } else {
    // Non-dense backends expand single maps through the same operator as
    // batches, so a model's single-frame and batch answers agree.
    expand_into(
        numerics::ConstMatrixView(alpha.data(), 1, k_, k_),
        numerics::MatrixView(out.data(), 1, out.size(), out.size()));
  }
}

numerics::Vector ReconstructionModel::reconstruct(
    numerics::ConstVectorView readings) const {
  numerics::Vector map(mean_map_.size());
  reconstruct_into(readings, map, wrapper_workspace());
  return map;
}

void ReconstructionModel::reconstruct_batch_into(
    numerics::ConstMatrixView readings, numerics::MatrixView out,
    Workspace& workspace) const {
  if (readings.cols() != sensors_.size()) {
    throw std::invalid_argument(
        "ReconstructionModel::reconstruct_batch: readings size mismatch");
  }
  const std::size_t frames = readings.rows();
  if (out.rows() != frames || out.cols() != mean_map_.size()) {
    throw std::invalid_argument(
        "ReconstructionModel::reconstruct_batch: output shape mismatch");
  }
  const std::size_t m = sensors_.size();
  workspace.begin(workspace_doubles(frames));
  numerics::MatrixView centered = workspace.alloc_matrix(frames, m);
  numerics::MatrixView alpha = workspace.alloc_matrix(frames, k_);
  numerics::VectorView scratch = workspace.alloc_vector(m);
  for (std::size_t f = 0; f < frames; ++f) {
    const double* src = readings.row_data(f);
    double* dst = centered.row_data(f);
    for (std::size_t s = 0; s < m; ++s) {
      dst[s] = src[s] - mean_at_sensors_[s];
    }
  }
  // One multi-RHS solve against the cached QR factor, then one blocked
  // GEMM expands all coefficient rows through the subspace at once.
  {
    obs::ScopedStageSpan span(obs::Stage::kSolve);
    factor_.solver.solve_batch_into(centered, alpha, scratch);
  }
  expand_into(alpha, out);
}

numerics::Matrix ReconstructionModel::reconstruct_batch(
    numerics::ConstMatrixView readings) const {
  numerics::Matrix maps(readings.rows(), mean_map_.size());
  reconstruct_batch_into(readings, maps.view(), wrapper_workspace());
  return maps;
}

void ReconstructionModel::expand_into(numerics::ConstMatrixView alpha,
                                      numerics::MatrixView out) const {
  if (alpha.cols() != k_) {
    throw std::invalid_argument(
        "ReconstructionModel::expand: coefficient width mismatch");
  }
  if (out.rows() != alpha.rows() || out.cols() != mean_map_.size()) {
    throw std::invalid_argument(
        "ReconstructionModel::expand: output shape mismatch");
  }
  // The mean map is seeded inside the kernel so the (large) output is
  // streamed exactly once, whichever backend runs the product. The stage
  // timer is free when no engine batch context is set on this thread.
  obs::ScopedStageSpan span(obs::Stage::kExpand);
  switch (expansion_.backend) {
    case ExpansionBackend::kDense64:
      numerics::matmul_bias_into(alpha, subspace_t_, mean_map_, out);
      break;
    case ExpansionBackend::kSparse64: {
      const numerics::BlockedOperatorView op{
          sparse_operator_.values(), sparse_operator_.block_cols(),
          sparse_operator_.row_ptr(), sparse_operator_.rows(),
          sparse_operator_.cols()};
      numerics::spmm_bias_into(alpha, op, mean_map_, out);
      break;
    }
    case ExpansionBackend::kFp32: {
      const numerics::ConstF32MatrixView op{
          f32_operator_.data(), k_, mean_map_.size(), mean_map_.size()};
      numerics::matmul_bias_f32_into(alpha, op, f32_bias_.data(), out);
      break;
    }
  }
}

std::size_t ReconstructionModel::expansion_bytes() const {
  switch (expansion_.backend) {
    case ExpansionBackend::kSparse64:
      return sparse_operator_.bytes();
    case ExpansionBackend::kFp32:
      return (f32_operator_.size() + f32_bias_.size()) * sizeof(float);
    case ExpansionBackend::kDense64:
      break;
  }
  return subspace_t_.storage().size() * sizeof(double);
}

double ReconstructionModel::sparse_stored_density() const {
  return expansion_.backend == ExpansionBackend::kSparse64
             ? sparse_operator_.stored_density()
             : 1.0;
}

double ReconstructionModel::sparse_dropped_mass() const {
  return expansion_.backend == ExpansionBackend::kSparse64
             ? sparse_operator_.dropped_mass()
             : 0.0;
}

numerics::Matrix ReconstructionModel::expand(
    numerics::ConstMatrixView alpha) const {
  numerics::Matrix out(alpha.rows(), mean_map_.size());
  expand_into(alpha, out.view());
  return out;
}

}  // namespace eigenmaps::core
