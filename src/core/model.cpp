#include "core/model.h"

#include <stdexcept>

#include "numerics/blas.h"
#include "numerics/svd.h"

namespace eigenmaps::core {

namespace {

constexpr double kRankTolerance = 1e-8;

numerics::Matrix sampled_basis_rows(const Basis& basis, std::size_t k,
                                    const SensorLocations& sensors) {
  if (k == 0 || k > basis.max_order()) {
    throw std::invalid_argument("ReconstructionModel: order out of range");
  }
  if (sensors.empty() || k > sensors.size()) {
    throw std::invalid_argument(
        "ReconstructionModel: order exceeds the sensor count");
  }
  const numerics::Matrix& v = basis.vectors();
  numerics::Matrix sampled(sensors.size(), k);
  for (std::size_t s = 0; s < sensors.size(); ++s) {
    if (sensors[s] >= basis.cell_count()) {
      throw std::invalid_argument("ReconstructionModel: sensor out of range");
    }
    const numerics::ConstVectorView row = v.row_view(sensors[s]);
    for (std::size_t j = 0; j < k; ++j) sampled(s, j) = row[j];
  }
  return sampled;
}

}  // namespace

ReconstructionModel::SampledFactor ReconstructionModel::factor_sampled(
    const Basis& basis, std::size_t k, const SensorLocations& sensors) {
  numerics::Matrix sampled = sampled_basis_rows(basis, k, sensors);
  const numerics::Vector sv = numerics::singular_values(sampled);
  if (sv.empty() || sv.front() <= 0.0 ||
      sv.back() < kRankTolerance * sv.front()) {
    // Theorem 1: rank(Psi~_K) = K is required for a unique least-squares
    // estimate; the caller retries with a smaller order.
    throw std::invalid_argument(
        "ReconstructionModel: sampled basis rank deficient");
  }
  numerics::HouseholderQr solver(sampled);  // copy: Psi~ rows feed downdates
  return {std::move(sampled), std::move(solver), sv.front() / sv.back()};
}

ReconstructionModel::ReconstructionModel(const Basis& basis, std::size_t k,
                                         SensorLocations sensors,
                                         numerics::Vector mean_map)
    : k_(k),
      sensors_(std::move(sensors)),
      mean_map_(std::move(mean_map)),
      factor_(factor_sampled(basis, k, sensors_)) {
  if (mean_map_.size() != basis.cell_count()) {
    throw std::invalid_argument("ReconstructionModel: mean map size mismatch");
  }

  mean_at_sensors_.resize(sensors_.size());
  for (std::size_t s = 0; s < sensors_.size(); ++s) {
    mean_at_sensors_[s] = mean_map_[sensors_[s]];
  }
  subspace_ = numerics::Matrix(basis.cell_count(), k);
  subspace_t_ = numerics::Matrix(k, basis.cell_count());
  const numerics::Matrix& v = basis.vectors();
  for (std::size_t i = 0; i < basis.cell_count(); ++i) {
    const double* row = v.row_data(i);
    double* dst = subspace_.row_data(i);
    for (std::size_t j = 0; j < k; ++j) {
      dst[j] = row[j];
      subspace_t_(j, i) = row[j];
    }
  }
}

std::size_t ReconstructionModel::workspace_doubles(std::size_t frames) const {
  const std::size_t m = sensors_.size();
  // Centered readings + coefficients + solver scratch. The scratch term
  // (m + k) covers the full-sensor QR (m) and every masked solver a
  // FactorCache can build on this model (QR of fewer rows, or the
  // seminormal pair active + k <= m + k).
  return Workspace::padded(frames * m) + Workspace::padded(frames * k_) +
         Workspace::padded(m + k_);
}

void ReconstructionModel::sample_into(numerics::ConstVectorView map,
                                      numerics::VectorView readings) const {
  if (map.size() != mean_map_.size()) {
    throw std::invalid_argument(
        "ReconstructionModel::sample: map size mismatch");
  }
  if (readings.size() != sensors_.size()) {
    throw std::invalid_argument(
        "ReconstructionModel::sample: readings size mismatch");
  }
  for (std::size_t s = 0; s < sensors_.size(); ++s) {
    readings[s] = map[sensors_[s]];
  }
}

numerics::Vector ReconstructionModel::sample(
    numerics::ConstVectorView map) const {
  numerics::Vector readings(sensors_.size());
  sample_into(map, readings);
  return readings;
}

void ReconstructionModel::reconstruct_into(numerics::ConstVectorView readings,
                                           numerics::VectorView out,
                                           Workspace& workspace) const {
  if (readings.size() != sensors_.size()) {
    throw std::invalid_argument(
        "ReconstructionModel::reconstruct: readings size mismatch");
  }
  if (out.size() != mean_map_.size()) {
    throw std::invalid_argument(
        "ReconstructionModel::reconstruct: output size mismatch");
  }
  const std::size_t m = sensors_.size();
  workspace.begin(workspace_doubles(1));
  numerics::VectorView centered = workspace.alloc_vector(m);
  numerics::VectorView alpha = workspace.alloc_vector(k_);
  numerics::VectorView scratch = workspace.alloc_vector(m);
  for (std::size_t s = 0; s < m; ++s) {
    centered[s] = readings[s] - mean_at_sensors_[s];
  }
  factor_.solver.solve_into(centered, alpha, scratch);
  // Per-cell dot products rather than the blocked GEMM: a single map is
  // far below the kernel's threading threshold, and this accumulation
  // order is the historical (golden) one.
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double* row = subspace_.row_data(i);
    double s = 0.0;
    for (std::size_t j = 0; j < k_; ++j) s += row[j] * alpha[j];
    out[i] = mean_map_[i] + s;
  }
}

numerics::Vector ReconstructionModel::reconstruct(
    numerics::ConstVectorView readings) const {
  numerics::Vector map(mean_map_.size());
  reconstruct_into(readings, map, wrapper_workspace());
  return map;
}

void ReconstructionModel::reconstruct_batch_into(
    numerics::ConstMatrixView readings, numerics::MatrixView out,
    Workspace& workspace) const {
  if (readings.cols() != sensors_.size()) {
    throw std::invalid_argument(
        "ReconstructionModel::reconstruct_batch: readings size mismatch");
  }
  const std::size_t frames = readings.rows();
  if (out.rows() != frames || out.cols() != mean_map_.size()) {
    throw std::invalid_argument(
        "ReconstructionModel::reconstruct_batch: output shape mismatch");
  }
  const std::size_t m = sensors_.size();
  workspace.begin(workspace_doubles(frames));
  numerics::MatrixView centered = workspace.alloc_matrix(frames, m);
  numerics::MatrixView alpha = workspace.alloc_matrix(frames, k_);
  numerics::VectorView scratch = workspace.alloc_vector(m);
  for (std::size_t f = 0; f < frames; ++f) {
    const double* src = readings.row_data(f);
    double* dst = centered.row_data(f);
    for (std::size_t s = 0; s < m; ++s) {
      dst[s] = src[s] - mean_at_sensors_[s];
    }
  }
  // One multi-RHS solve against the cached QR factor, then one blocked
  // GEMM expands all coefficient rows through the subspace at once.
  factor_.solver.solve_batch_into(centered, alpha, scratch);
  expand_into(alpha, out);
}

numerics::Matrix ReconstructionModel::reconstruct_batch(
    numerics::ConstMatrixView readings) const {
  numerics::Matrix maps(readings.rows(), mean_map_.size());
  reconstruct_batch_into(readings, maps.view(), wrapper_workspace());
  return maps;
}

void ReconstructionModel::expand_into(numerics::ConstMatrixView alpha,
                                      numerics::MatrixView out) const {
  if (alpha.cols() != k_) {
    throw std::invalid_argument(
        "ReconstructionModel::expand: coefficient width mismatch");
  }
  if (out.rows() != alpha.rows() || out.cols() != mean_map_.size()) {
    throw std::invalid_argument(
        "ReconstructionModel::expand: output shape mismatch");
  }
  // The mean map is seeded inside the kernel so the (large) output is
  // streamed exactly once.
  numerics::matmul_bias_into(alpha, subspace_t_, mean_map_, out);
}

numerics::Matrix ReconstructionModel::expand(
    numerics::ConstMatrixView alpha) const {
  numerics::Matrix out(alpha.rows(), mean_map_.size());
  expand_into(alpha, out.view());
  return out;
}

}  // namespace eigenmaps::core
