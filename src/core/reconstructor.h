// Least-squares thermal-map reconstruction from sparse sensor readings.
#ifndef EIGENMAPS_CORE_RECONSTRUCTOR_H
#define EIGENMAPS_CORE_RECONSTRUCTOR_H

#include "core/allocation.h"
#include "core/basis.h"
#include "numerics/qr.h"

namespace eigenmaps::core {

/// Holds the order-k sampled basis Psi~ (sensors x k) in factored form so
/// one map reconstruction is a tiny QR solve plus an N x k product.
/// Construction throws std::invalid_argument when Psi~ is rank deficient
/// (Theorem 1's feasibility condition) or k exceeds the sensor count.
class Reconstructor {
 public:
  Reconstructor(const Basis& basis, std::size_t k, SensorLocations sensors,
                numerics::Vector mean_map);

  std::size_t order() const { return k_; }
  const SensorLocations& sensors() const { return sensors_; }

  /// sigma_max / sigma_min of the sampled basis Psi~ — the conditioning of
  /// the inverse problem (drives noise amplification, Fig. 5).
  double condition_number() const { return factor_.condition; }

  /// Sensor readings for a full map (just the sampled entries).
  numerics::Vector sample(const numerics::Vector& map) const;

  /// Full-map estimate from readings: mean + V_k * lstsq(Psi~, y - mean~).
  numerics::Vector reconstruct(const numerics::Vector& readings) const;

 private:
  // QR of the sampled basis Psi~ plus its conditioning, built together so
  // the sensor rows are extracted and rank-checked exactly once.
  struct SampledFactor {
    numerics::HouseholderQr solver;
    double condition;
  };
  static SampledFactor factor_sampled(const Basis& basis, std::size_t k,
                                      const SensorLocations& sensors);

  std::size_t k_;
  SensorLocations sensors_;
  numerics::Vector mean_map_;
  numerics::Vector mean_at_sensors_;
  numerics::Matrix subspace_;  // N x k copy of the leading basis columns
  SampledFactor factor_;
};

}  // namespace eigenmaps::core

#endif  // EIGENMAPS_CORE_RECONSTRUCTOR_H
