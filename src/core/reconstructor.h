// Least-squares thermal-map reconstruction from sparse sensor readings.
#ifndef EIGENMAPS_CORE_RECONSTRUCTOR_H
#define EIGENMAPS_CORE_RECONSTRUCTOR_H

#include <memory>

#include "core/model.h"

namespace eigenmaps::core {

/// The single-model convenience front end: owns an immutable
/// ReconstructionModel and forwards to it. The figure harnesses and the
/// design-time pipeline work at this level; the serving stack
/// (runtime::ModelRegistry, core::FactorCache) shares the underlying
/// model() directly so many engines, caches, and threads can reference
/// one trained model without copying its N x k subspace.
class Reconstructor {
 public:
  /// Expansion backend from the environment (default_expansion_options):
  /// dense64 unless EIGENMAPS_EXPANSION_BACKEND opts into sparse64/fp32,
  /// so existing builds stay byte-identical with no env set.
  Reconstructor(const Basis& basis, std::size_t k, SensorLocations sensors,
                numerics::Vector mean_map)
      : Reconstructor(basis, k, std::move(sensors), std::move(mean_map),
                      default_expansion_options()) {}

  /// Explicit per-model expansion backend (DESIGN.md §14).
  Reconstructor(const Basis& basis, std::size_t k, SensorLocations sensors,
                numerics::Vector mean_map, const ExpansionOptions& expansion)
      : model_(std::make_shared<const ReconstructionModel>(
            basis, k, std::move(sensors), std::move(mean_map), expansion)) {}

  /// The shared immutable model; register this with a ModelRegistry or
  /// build a FactorCache on it for dropout-tolerant serving.
  const std::shared_ptr<const ReconstructionModel>& model() const {
    return model_;
  }

  std::size_t order() const { return model_->order(); }
  const SensorLocations& sensors() const { return model_->sensors(); }

  /// sigma_max / sigma_min of the sampled basis Psi~ — the conditioning of
  /// the inverse problem (drives noise amplification, Fig. 5).
  double condition_number() const { return model_->condition_number(); }

  /// Sensor readings for a full map (just the sampled entries).
  numerics::Vector sample(numerics::ConstVectorView map) const {
    return model_->sample(map);
  }

  /// Full-map estimate from readings: mean + V_k * lstsq(Psi~, y - mean~).
  numerics::Vector reconstruct(numerics::ConstVectorView readings) const {
    return model_->reconstruct(readings);
  }

  /// Allocation-free forms: caller-provided output and Workspace (see
  /// ReconstructionModel; bit-identical to the value-returning forms).
  void reconstruct_into(numerics::ConstVectorView readings,
                        numerics::VectorView out, Workspace& workspace) const {
    model_->reconstruct_into(readings, out, workspace);
  }
  void reconstruct_batch_into(numerics::ConstMatrixView readings,
                              numerics::MatrixView out,
                              Workspace& workspace) const {
    model_->reconstruct_batch_into(readings, out, workspace);
  }

  /// Batched reconstruction: row f of `readings` (frames x sensors) is one
  /// sensor frame, row f of the result (frames x N) its full-map estimate.
  /// Agrees with per-frame reconstruct() to ~1e-12 (the mean map seeds the
  /// GEMM accumulator, so rounding differs in the last bits); see
  /// ReconstructionModel::reconstruct_batch.
  numerics::Matrix reconstruct_batch(
      numerics::ConstMatrixView readings) const {
    return model_->reconstruct_batch(readings);
  }

 private:
  std::shared_ptr<const ReconstructionModel> model_;
};

}  // namespace eigenmaps::core

#endif  // EIGENMAPS_CORE_RECONSTRUCTOR_H
