// Least-squares thermal-map reconstruction from sparse sensor readings.
#ifndef EIGENMAPS_CORE_RECONSTRUCTOR_H
#define EIGENMAPS_CORE_RECONSTRUCTOR_H

#include "core/allocation.h"
#include "core/basis.h"
#include "numerics/qr.h"

namespace eigenmaps::core {

/// Holds the order-k sampled basis Psi~ (sensors x k) in factored form so
/// one map reconstruction is a tiny QR solve plus an N x k product.
/// Construction throws std::invalid_argument when Psi~ is rank deficient
/// (Theorem 1's feasibility condition) or k exceeds the sensor count.
class Reconstructor {
 public:
  Reconstructor(const Basis& basis, std::size_t k, SensorLocations sensors,
                numerics::Vector mean_map);

  std::size_t order() const { return k_; }
  const SensorLocations& sensors() const { return sensors_; }

  /// sigma_max / sigma_min of the sampled basis Psi~ — the conditioning of
  /// the inverse problem (drives noise amplification, Fig. 5).
  double condition_number() const { return factor_.condition; }

  /// Sensor readings for a full map (just the sampled entries).
  numerics::Vector sample(const numerics::Vector& map) const;

  /// Full-map estimate from readings: mean + V_k * lstsq(Psi~, y - mean~).
  numerics::Vector reconstruct(const numerics::Vector& readings) const;

  /// Batched reconstruction: row f of `readings` (frames x sensors) is one
  /// sensor frame, row f of the result (frames x N) its full-map estimate.
  /// Agrees with per-frame reconstruct() to ~1e-12 (the mean map seeds the
  /// GEMM accumulator, so rounding differs in the last bits), but solves
  /// the cached QR against all frames at once and expands coefficients
  /// with one blocked GEMM, so the N x k subspace streams through cache
  /// once per batch instead of once per frame.
  numerics::Matrix reconstruct_batch(const numerics::Matrix& readings) const;

 private:
  // QR of the sampled basis Psi~ plus its conditioning, built together so
  // the sensor rows are extracted and rank-checked exactly once.
  struct SampledFactor {
    numerics::HouseholderQr solver;
    double condition;
  };
  static SampledFactor factor_sampled(const Basis& basis, std::size_t k,
                                      const SensorLocations& sensors);

  std::size_t k_;
  SensorLocations sensors_;
  numerics::Vector mean_map_;
  numerics::Vector mean_at_sensors_;
  numerics::Matrix subspace_;    // N x k copy of the leading basis columns
  numerics::Matrix subspace_t_;  // k x N transpose, for the batched GEMM
  SampledFactor factor_;
};

}  // namespace eigenmaps::core

#endif  // EIGENMAPS_CORE_RECONSTRUCTOR_H
