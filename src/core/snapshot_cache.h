// On-disk snapshot cache so the ~minutes thermal simulation runs once and
// every figure harness reloads it in milliseconds.
//
// Format (little-endian, host doubles): magic + version, the simulation-
// relevant ExperimentConfig fields, the map matrix, the per-cell energy
// vector, and an FNV-1a checksum over the payload. Loads validate the
// header, the exact file size and the checksum; any mismatch (stale config,
// truncation, bit rot) is treated as a miss and the experiment is
// re-simulated and re-saved.
#ifndef EIGENMAPS_CORE_SNAPSHOT_CACHE_H
#define EIGENMAPS_CORE_SNAPSHOT_CACHE_H

#include <optional>
#include <string>

#include "core/pipeline.h"

namespace eigenmaps::core {

struct CachedSnapshots {
  SnapshotSet snapshots;
  numerics::Vector energy;
};

/// Writes atomically (temp file + rename). Returns false on IO failure.
bool save_snapshots(const std::string& path, const ExperimentConfig& config,
                    const SnapshotSet& snapshots,
                    const numerics::Vector& energy);

/// Returns nullopt when the file is missing, malformed, truncated, fails
/// the checksum, or was produced by a different config.
std::optional<CachedSnapshots> load_snapshots(const std::string& path,
                                              const ExperimentConfig& config);

/// Cache-or-simulate: the entry point the harnesses use.
Experiment build_cached_experiment(const ExperimentConfig& config,
                                   const std::string& path);

}  // namespace eigenmaps::core

#endif  // EIGENMAPS_CORE_SNAPSHOT_CACHE_H
