#include "core/snapshot_cache.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

namespace eigenmaps::core {

namespace {

constexpr char kMagic[8] = {'E', 'I', 'G', 'M', 'A', 'P', 'S', '1'};

struct CacheHeader {
  char magic[8];
  std::uint64_t grid_width;
  std::uint64_t grid_height;
  std::uint64_t scenario_count;
  std::uint64_t steps_per_scenario;
  double dt;
  std::uint64_t seed;
  std::uint64_t rows;
  std::uint64_t cols;
};

std::uint64_t fnv1a(const unsigned char* data, std::size_t size,
                    std::uint64_t hash = 0xcbf29ce484222325ULL) {
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

CacheHeader make_header(const ExperimentConfig& config) {
  CacheHeader h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.grid_width = config.grid_width;
  h.grid_height = config.grid_height;
  h.scenario_count = config.scenario_count;
  h.steps_per_scenario = config.steps_per_scenario;
  h.dt = config.dt;
  h.seed = config.seed;
  h.rows = config.map_count();
  h.cols = config.cell_count();
  return h;
}

class File {
 public:
  File(const std::string& path, const char* mode)
      : f_(std::fopen(path.c_str(), mode)) {}
  ~File() {
    if (f_ != nullptr) std::fclose(f_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  std::FILE* get() const { return f_; }
  explicit operator bool() const { return f_ != nullptr; }

 private:
  std::FILE* f_;
};

}  // namespace

bool save_snapshots(const std::string& path, const ExperimentConfig& config,
                    const SnapshotSet& snapshots,
                    const numerics::Vector& energy) {
  const std::string tmp = path + ".tmp";
  const auto write_all = [&]() -> bool {
    File f(tmp, "wb");
    if (!f) return false;

    const CacheHeader header = make_header(config);
    if (std::fwrite(&header, sizeof(header), 1, f.get()) != 1) return false;

    const std::vector<double>& maps = snapshots.data().storage();
    if (!maps.empty() &&
        std::fwrite(maps.data(), sizeof(double), maps.size(), f.get()) !=
            maps.size()) {
      return false;
    }
    if (!energy.empty() &&
        std::fwrite(energy.data(), sizeof(double), energy.size(), f.get()) !=
            energy.size()) {
      return false;
    }

    std::uint64_t checksum = fnv1a(
        reinterpret_cast<const unsigned char*>(maps.data()),
        maps.size() * sizeof(double));
    checksum = fnv1a(reinterpret_cast<const unsigned char*>(energy.data()),
                     energy.size() * sizeof(double), checksum);
    return std::fwrite(&checksum, sizeof(checksum), 1, f.get()) == 1;
  };
  if (!write_all() || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<CachedSnapshots> load_snapshots(const std::string& path,
                                              const ExperimentConfig& config) {
  File f(path, "rb");
  if (!f) return std::nullopt;

  CacheHeader header{};
  if (std::fread(&header, sizeof(header), 1, f.get()) != 1) {
    return std::nullopt;
  }
  const CacheHeader expected = make_header(config);
  if (std::memcmp(&header, &expected, sizeof(header)) != 0) {
    return std::nullopt;  // wrong magic/version or stale config
  }

  const std::size_t rows = config.map_count();
  const std::size_t cols = config.cell_count();

  // Size check before reading the payload.
  if (std::fseek(f.get(), 0, SEEK_END) != 0) return std::nullopt;
  const long size = std::ftell(f.get());
  const long expected_size =
      static_cast<long>(sizeof(CacheHeader) +
                        (rows * cols + cols) * sizeof(double) +
                        sizeof(std::uint64_t));
  if (size != expected_size) return std::nullopt;
  if (std::fseek(f.get(), sizeof(CacheHeader), SEEK_SET) != 0) {
    return std::nullopt;
  }

  numerics::Matrix maps(rows, cols);
  if (std::fread(maps.storage().data(), sizeof(double), rows * cols,
                 f.get()) != rows * cols) {
    return std::nullopt;
  }
  numerics::Vector energy(cols);
  if (std::fread(energy.data(), sizeof(double), cols, f.get()) != cols) {
    return std::nullopt;
  }
  std::uint64_t stored = 0;
  if (std::fread(&stored, sizeof(stored), 1, f.get()) != 1) {
    return std::nullopt;
  }

  std::uint64_t checksum = fnv1a(
      reinterpret_cast<const unsigned char*>(maps.storage().data()),
      maps.storage().size() * sizeof(double));
  checksum = fnv1a(reinterpret_cast<const unsigned char*>(energy.data()),
                   energy.size() * sizeof(double), checksum);
  if (checksum != stored) return std::nullopt;

  CachedSnapshots out;
  out.snapshots = SnapshotSet(std::move(maps));
  out.energy = std::move(energy);
  return out;
}

Experiment build_cached_experiment(const ExperimentConfig& config,
                                   const std::string& path) {
  if (auto cached = load_snapshots(path, config)) {
    return Experiment(config, std::move(cached->snapshots),
                      std::move(cached->energy));
  }
  std::fprintf(stderr,
               "# %s: cache miss (missing, stale or corrupt) — simulating\n",
               path.c_str());
  Experiment experiment = simulate_experiment(config);
  if (!save_snapshots(path, config, experiment.snapshots(),
                      experiment.energy())) {
    std::fprintf(stderr, "# warning: could not write cache %s\n",
                 path.c_str());
  }
  return experiment;
}

}  // namespace eigenmaps::core
