// Compressed sparse row matrix, built once from triplets.
#ifndef EIGENMAPS_SPARSE_CSR_H
#define EIGENMAPS_SPARSE_CSR_H

#include <cstddef>
#include <vector>

#include "numerics/matrix.h"

namespace eigenmaps::sparse {

struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Duplicated (row, col) entries are summed.
  static CsrMatrix from_triplets(std::size_t rows, std::size_t cols,
                                 std::vector<Triplet> triplets);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nonzero_count() const { return values_.size(); }

  void multiply(const numerics::Vector& x, numerics::Vector& y) const;
  numerics::Vector multiply(const numerics::Vector& x) const;

  numerics::Vector diagonal() const;

  /// Returns a copy with `extra[i]` added to diagonal entry (i, i); used to
  /// assemble the backward-Euler system (C/dt + G) from the conductance G.
  CsrMatrix with_diagonal_added(const numerics::Vector& extra) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_start_;  // rows + 1 entries
  std::vector<std::size_t> col_index_;
  std::vector<double> values_;
};

}  // namespace eigenmaps::sparse

#endif  // EIGENMAPS_SPARSE_CSR_H
