#include "sparse/conjugate_gradient.h"

#include <cmath>
#include <stdexcept>

namespace eigenmaps::sparse {

CgResult conjugate_gradient(const CsrMatrix& a, const numerics::Vector& b,
                            const numerics::Vector* x0,
                            const CgOptions& options) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    throw std::invalid_argument("conjugate_gradient: dimension mismatch");
  }

  CgResult result;
  result.x.assign(n, 0.0);
  if (x0 != nullptr) {
    if (x0->size() != n) {
      throw std::invalid_argument("conjugate_gradient: bad warm start size");
    }
    result.x = *x0;
  }

  numerics::Vector inv_diag = a.diagonal();
  for (double& d : inv_diag) d = (d != 0.0) ? 1.0 / d : 1.0;

  numerics::Vector r(n), z(n), p(n), ap(n);
  a.multiply(result.x, ap);
  double b_norm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = b[i] - ap[i];
    b_norm += b[i] * b[i];
  }
  b_norm = std::sqrt(b_norm);
  const double stop = options.tolerance * (b_norm > 0.0 ? b_norm : 1.0);

  double rz = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    z[i] = inv_diag[i] * r[i];
    rz += r[i] * z[i];
  }
  p = z;

  double r_norm = 0.0;
  for (const double v : r) r_norm += v * v;
  r_norm = std::sqrt(r_norm);

  std::size_t it = 0;
  while (r_norm > stop && it < options.max_iterations) {
    a.multiply(p, ap);
    double pap = 0.0;
    for (std::size_t i = 0; i < n; ++i) pap += p[i] * ap[i];
    if (pap <= 0.0) break;  // matrix not SPD (or breakdown); bail out
    const double alpha = rz / pap;
    for (std::size_t i = 0; i < n; ++i) {
      result.x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    double rz_next = 0.0;
    r_norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      z[i] = inv_diag[i] * r[i];
      rz_next += r[i] * z[i];
      r_norm += r[i] * r[i];
    }
    r_norm = std::sqrt(r_norm);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
    ++it;
  }

  result.iterations = it;
  result.residual_norm = r_norm;
  result.converged = r_norm <= stop;
  return result;
}

}  // namespace eigenmaps::sparse
