#include "sparse/blocked_csr.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace eigenmaps::sparse {

BlockedCsr::BlockedCsr(numerics::ConstMatrixView dense,
                       double relative_threshold) {
  if (!(relative_threshold >= 0.0) || relative_threshold > 1.0) {
    throw std::invalid_argument(
        "BlockedCsr: relative_threshold must be in [0, 1]");
  }
  rows_ = dense.rows();
  cols_ = dense.cols();
  blocks_per_row_ = (cols_ + kBlockWidth - 1) / kBlockWidth;
  row_ptr_.assign(rows_ + 1, 0);
  if (rows_ == 0 || cols_ == 0) {
    fully_dense_ = true;
    return;
  }

  double max_abs = 0.0;
  double total_sq = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* row = dense.row_data(i);
    for (std::size_t j = 0; j < cols_; ++j) {
      const double a = std::fabs(row[j]);
      if (a > max_abs) max_abs = a;
      total_sq += a * a;
    }
  }
  const double cutoff = relative_threshold * max_abs;

  block_col_.reserve(rows_ * blocks_per_row_);
  double dropped_sq = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* row = dense.row_data(i);
    for (std::size_t b = 0; b < blocks_per_row_; ++b) {
      const std::size_t j0 = b * kBlockWidth;
      const std::size_t width =
          (cols_ - j0 < kBlockWidth) ? cols_ - j0 : kBlockWidth;
      bool keep = false;
      double block_sq = 0.0;
      for (std::size_t l = 0; l < width; ++l) {
        const double a = std::fabs(row[j0 + l]);
        // >= so cutoff 0 keeps all-zero blocks: threshold 0 must reproduce
        // the dense operator exactly, padding included.
        if (a >= cutoff) keep = true;
        block_sq += a * a;
      }
      if (keep) {
        block_col_.push_back(static_cast<std::uint32_t>(b));
        for (std::size_t l = 0; l < kBlockWidth; ++l) {
          values_.push_back(l < width ? row[j0 + l] : 0.0);
        }
      } else {
        dropped_sq += block_sq;
      }
    }
    row_ptr_[i + 1] = static_cast<std::uint32_t>(block_col_.size());
  }

  fully_dense_ = block_col_.size() == rows_ * blocks_per_row_;
  dropped_mass_ =
      total_sq > 0.0 ? std::sqrt(dropped_sq) / std::sqrt(total_sq) : 0.0;
}

double BlockedCsr::stored_density() const {
  const std::size_t total = rows_ * blocks_per_row_;
  return total == 0 ? 1.0
                    : static_cast<double>(block_col_.size()) /
                          static_cast<double>(total);
}

std::size_t BlockedCsr::bytes() const {
  return values_.size() * sizeof(double) +
         block_col_.size() * sizeof(std::uint32_t) +
         row_ptr_.size() * sizeof(std::uint32_t);
}

numerics::ConstMatrixView BlockedCsr::dense_view() const {
  if (!fully_dense_) {
    throw std::logic_error("BlockedCsr::dense_view: operator is not dense");
  }
  return numerics::ConstMatrixView(values_.data(), rows_, cols_,
                                   blocks_per_row_ * kBlockWidth);
}

}  // namespace eigenmaps::sparse
