// Row-panel blocked CSR for the thresholded expansion operator U^T.
//
// The serving tail expands `out = mean + alpha · U^T` (DESIGN.md §14) and
// trained eigenmap bases are highly thresholdable: most of each basis map's
// energy concentrates near its dominant spatial mode. BlockedCsr stores the
// k×N operator as 8-wide column blocks per row — a block survives when any
// of its 8 entries clears the threshold, and a stored block keeps all 8
// original values (zero-padded past column N). Eight doubles is one AVX-512
// vector / two AVX-2 vectors, so the spmm kernels stream whole blocks with
// no per-entry index arithmetic (the SparseLib blocked-CSR shape).
//
// The value array is row-contiguous: row i's blocks occupy
// values()[row_ptr()[i]*8 .. row_ptr()[i+1]*8). When nothing was dropped
// (threshold 0, or a basis with no small entries) every row stores all
// ceil(N/8) blocks in ascending order, and the value array is literally a
// dense row-major matrix with stride ceil(N/8)*8 — dense_view() exposes it
// so the caller can delegate to the dense GEMM and stay bit-identical to
// the fp64-dense backend by construction.
#ifndef EIGENMAPS_SPARSE_BLOCKED_CSR_H
#define EIGENMAPS_SPARSE_BLOCKED_CSR_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "numerics/matrix.h"

namespace eigenmaps::sparse {

class BlockedCsr {
 public:
  /// Column-block width: one AVX-512 double vector.
  static constexpr std::size_t kBlockWidth = 8;

  BlockedCsr() = default;

  /// Thresholds `dense` (k×N, any row stride) at
  /// `relative_threshold * max|dense|`: an 8-wide block is dropped only
  /// when every entry in it falls strictly below the absolute threshold.
  /// relative_threshold 0 keeps every block (fully_dense() == true).
  BlockedCsr(numerics::ConstMatrixView dense, double relative_threshold);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  /// ceil(cols / kBlockWidth): blocks in a fully stored row.
  std::size_t blocks_per_row() const { return blocks_per_row_; }
  std::size_t stored_blocks() const { return block_col_.size(); }

  /// rows()+1 entries; row i's blocks are [row_ptr()[i], row_ptr()[i+1]).
  const std::uint32_t* row_ptr() const { return row_ptr_.data(); }
  /// Block-column index (j / kBlockWidth) per stored block, ascending
  /// within each row.
  const std::uint32_t* block_cols() const { return block_col_.data(); }
  /// stored_blocks() * kBlockWidth doubles, row-contiguous.
  const double* values() const { return values_.data(); }

  /// Stored blocks / total blocks — the fraction of the (padded) operator
  /// actually resident.
  double stored_density() const;
  /// Relative Frobenius mass of the dropped blocks:
  /// ||dropped|| / ||dense||, 0 when nothing was dropped.
  double dropped_mass() const { return dropped_mass_; }
  /// Resident bytes: values + block columns + row pointers.
  std::size_t bytes() const;

  /// True when every row stores all blocks_per_row() blocks — the value
  /// array is then a dense row-major matrix (see dense_view()).
  bool fully_dense() const { return fully_dense_; }
  /// Dense rows()×cols() view over the value array (stride
  /// blocks_per_row()*kBlockWidth). Only valid when fully_dense().
  numerics::ConstMatrixView dense_view() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t blocks_per_row_ = 0;
  bool fully_dense_ = false;
  double dropped_mass_ = 0.0;
  std::vector<std::uint32_t> row_ptr_;
  std::vector<std::uint32_t> block_col_;
  std::vector<double> values_;
};

}  // namespace eigenmaps::sparse

#endif  // EIGENMAPS_SPARSE_BLOCKED_CSR_H
