// Jacobi-preconditioned conjugate gradient for SPD systems.
#ifndef EIGENMAPS_SPARSE_CONJUGATE_GRADIENT_H
#define EIGENMAPS_SPARSE_CONJUGATE_GRADIENT_H

#include "sparse/csr.h"

namespace eigenmaps::sparse {

struct CgOptions {
  std::size_t max_iterations = 2000;
  double tolerance = 1e-10;  // relative residual ||r|| / ||b||
};

struct CgResult {
  numerics::Vector x;
  std::size_t iterations = 0;
  double residual_norm = 0.0;
  bool converged = false;
};

/// Solves A x = b for symmetric positive definite A. Pass `x0` to warm-start
/// (the thermal stepper reuses the previous state).
CgResult conjugate_gradient(const CsrMatrix& a, const numerics::Vector& b,
                            const numerics::Vector* x0 = nullptr,
                            const CgOptions& options = {});

}  // namespace eigenmaps::sparse

#endif  // EIGENMAPS_SPARSE_CONJUGATE_GRADIENT_H
