#include "sparse/csr.h"

#include <algorithm>
#include <stdexcept>

namespace eigenmaps::sparse {

CsrMatrix CsrMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                   std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    if (t.row >= rows || t.col >= cols) {
      throw std::invalid_argument("CsrMatrix: triplet out of range");
    }
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return (a.row != b.row) ? a.row < b.row : a.col < b.col;
            });

  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_start_.assign(rows + 1, 0);
  m.col_index_.reserve(triplets.size());
  m.values_.reserve(triplets.size());

  for (std::size_t i = 0; i < triplets.size();) {
    std::size_t j = i;
    double sum = 0.0;
    while (j < triplets.size() && triplets[j].row == triplets[i].row &&
           triplets[j].col == triplets[i].col) {
      sum += triplets[j].value;
      ++j;
    }
    if (sum != 0.0) {
      m.col_index_.push_back(triplets[i].col);
      m.values_.push_back(sum);
      ++m.row_start_[triplets[i].row + 1];
    }
    i = j;
  }
  for (std::size_t r = 0; r < rows; ++r) {
    m.row_start_[r + 1] += m.row_start_[r];
  }
  return m;
}

void CsrMatrix::multiply(const numerics::Vector& x,
                         numerics::Vector& y) const {
  if (x.size() != cols_) {
    throw std::invalid_argument("CsrMatrix::multiply: dimension mismatch");
  }
  y.assign(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t k = row_start_[r]; k < row_start_[r + 1]; ++k) {
      s += values_[k] * x[col_index_[k]];
    }
    y[r] = s;
  }
}

numerics::Vector CsrMatrix::multiply(const numerics::Vector& x) const {
  numerics::Vector y;
  multiply(x, y);
  return y;
}

numerics::Vector CsrMatrix::diagonal() const {
  numerics::Vector d(std::min(rows_, cols_), 0.0);
  for (std::size_t r = 0; r < d.size(); ++r) {
    for (std::size_t k = row_start_[r]; k < row_start_[r + 1]; ++k) {
      if (col_index_[k] == r) d[r] += values_[k];
    }
  }
  return d;
}

CsrMatrix CsrMatrix::with_diagonal_added(const numerics::Vector& extra) const {
  if (extra.size() != rows_ || rows_ != cols_) {
    throw std::invalid_argument("with_diagonal_added: needs square matrix");
  }
  CsrMatrix out = *this;
  std::vector<char> found(rows_, 0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = out.row_start_[r]; k < out.row_start_[r + 1]; ++k) {
      if (out.col_index_[k] == r) {
        out.values_[k] += extra[r];
        found[r] = 1;
      }
    }
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    if (!found[r] && extra[r] != 0.0) {
      throw std::invalid_argument(
          "with_diagonal_added: structural diagonal entry missing");
    }
  }
  return out;
}

}  // namespace eigenmaps::sparse
